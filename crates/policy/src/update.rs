//! Policy-update strategies and their signaling cost (§5.4).
//!
//! When intent changes, the operator can either
//!
//! 1. **move endpoints between groups** — each moved endpoint
//!    re-authenticates at its edge and that edge refreshes its rule
//!    subset (signaling ∝ endpoints moved), or
//! 2. **rewrite the group ACLs** — every edge hosting an affected
//!    destination group must receive the new rows (signaling ∝ affected
//!    edges × rules changed).
//!
//! The paper's examples: acquisitions (progressively move the acquired
//! company's users through groups) and service insertion (retag traffic
//! along the path instead of installing per-hop policies). Which is
//! cheaper "depends on the distribution of endpoints within groups";
//! [`UpdatePlan::signaling_messages`] makes the trade-off computable and
//! the `ablation_policy_update` bench sweeps it.

use std::collections::BTreeMap;

use sda_types::{GroupId, RouterId, VnId};

/// How an intent change is rolled out.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UpdateStrategy {
    /// Re-assign endpoints to different groups; ACLs stay put.
    MoveEndpoints,
    /// Update matrix cells; endpoints keep their groups.
    RewriteRules,
}

/// A deployment snapshot the planner reasons over: which edge hosts how
/// many endpoints of each `(vn, group)`.
#[derive(Clone, Debug, Default)]
pub struct Population {
    /// (edge, vn, group) → endpoint count.
    counts: BTreeMap<(RouterId, VnId, GroupId), u32>,
}

impl Population {
    /// Empty population.
    pub fn new() -> Self {
        Population::default()
    }

    /// Records `n` endpoints of `(vn, group)` on `edge`.
    pub fn add(&mut self, edge: RouterId, vn: VnId, group: GroupId, n: u32) {
        *self.counts.entry((edge, vn, group)).or_default() += n;
    }

    /// Endpoints of `(vn, group)` across all edges.
    pub fn group_size(&self, vn: VnId, group: GroupId) -> u32 {
        self.counts
            .iter()
            .filter(|((_, v, g), _)| *v == vn && *g == group)
            .map(|(_, n)| *n)
            .sum()
    }

    /// Edges hosting at least one endpoint of `(vn, group)`.
    pub fn edges_hosting(&self, vn: VnId, group: GroupId) -> Vec<RouterId> {
        let mut edges: Vec<RouterId> = self
            .counts
            .iter()
            .filter(|((_, v, g), n)| *v == vn && *g == group && **n > 0)
            .map(|((e, _, _), _)| *e)
            .collect();
        edges.dedup();
        edges
    }

    /// Per-edge endpoint counts of `(vn, group)`, ascending by edge
    /// (zero-count records are skipped).
    pub fn per_edge(&self, vn: VnId, group: GroupId) -> Vec<(RouterId, u32)> {
        self.counts
            .iter()
            .filter(|((_, v, g), n)| *v == vn && *g == group && **n > 0)
            .map(|((e, _, _), n)| (*e, *n))
            .collect()
    }

    /// Executes a group move on the deployment snapshot: every endpoint
    /// of `(vn, from)` is re-tagged into `to` on its own edge. Returns
    /// the number of endpoints moved — the re-auth count a
    /// [`UpdateStrategy::MoveEndpoints`] rollout pays for.
    pub fn move_group(&mut self, vn: VnId, from: GroupId, to: GroupId) -> u32 {
        let mut moved = 0;
        for (edge, n) in self.per_edge(vn, from) {
            self.counts.remove(&(edge, vn, from));
            *self.counts.entry((edge, vn, to)).or_default() += n;
            moved += n;
        }
        moved
    }

    /// Total endpoints recorded.
    pub fn total(&self) -> u32 {
        self.counts.values().sum()
    }
}

/// The executed form of a rollout: which edge receives how many
/// signaling messages. [`UpdatePlan::fanout`] expands a plan into this;
/// its total matches [`UpdatePlan::signaling_messages`] message for
/// message, so a churn driver can diff planned against delivered
/// fan-out exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RolloutFanout {
    /// edge → signaling messages addressed to it.
    pub per_edge: BTreeMap<RouterId, u64>,
}

impl RolloutFanout {
    /// Total signaling messages across all edges.
    pub fn total(&self) -> u64 {
        self.per_edge.values().sum()
    }

    /// Distinct edges receiving at least one message.
    pub fn edges(&self) -> usize {
        self.per_edge.values().filter(|n| **n > 0).count()
    }
}

/// One planned intent change, costable under either strategy.
#[derive(Clone, Debug)]
pub struct UpdatePlan {
    /// VN scope of the change.
    pub vn: VnId,
    /// Endpoints that would change group under [`UpdateStrategy::MoveEndpoints`]:
    /// `(from_group, to_group)`.
    pub moved_groups: (GroupId, GroupId),
    /// Matrix rows that would change under [`UpdateStrategy::RewriteRules`]:
    /// destination groups whose rows are touched, with the number of rules
    /// each.
    pub rewritten_rows: Vec<(GroupId, u32)>,
}

impl UpdatePlan {
    /// The §5.4 "acquisition" playbook: move everyone in `from` to `to`
    /// (equivalently expressible as rewriting every row involving `from`).
    pub fn acquisition(vn: VnId, from: GroupId, to: GroupId, rules_touching_from: u32) -> Self {
        UpdatePlan {
            vn,
            moved_groups: (from, to),
            rewritten_rows: vec![(from, rules_touching_from)],
        }
    }

    /// Signaling messages needed to roll out the plan with `strategy`
    /// over `population`.
    ///
    /// * MoveEndpoints: one re-auth + rule refresh per moved endpoint.
    /// * RewriteRules: one SXP push per (affected edge × changed row).
    pub fn signaling_messages(&self, strategy: UpdateStrategy, population: &Population) -> u64 {
        match strategy {
            UpdateStrategy::MoveEndpoints => {
                let (from, _) = self.moved_groups;
                // Re-auth (1 msg) + refreshed subset download (1 msg).
                u64::from(population.group_size(self.vn, from)) * 2
            }
            UpdateStrategy::RewriteRules => self
                .rewritten_rows
                .iter()
                .map(|(dst, rules)| {
                    let edges = population.edges_hosting(self.vn, *dst).len() as u64;
                    edges * u64::from(*rules)
                })
                .sum(),
        }
    }

    /// Expands the plan into per-edge signaling under `strategy` — the
    /// executable twin of [`UpdatePlan::signaling_messages`] (the
    /// totals are equal by construction, asserted by the policy-churn
    /// workload's fan-out accounting).
    ///
    /// * MoveEndpoints: each edge hosting `n` endpoints of the source
    ///   group receives `2n` messages (`n` re-auths + `n` subset
    ///   refreshes).
    /// * RewriteRules: each edge hosting a rewritten row's destination
    ///   group receives that row's rule count.
    pub fn fanout(&self, strategy: UpdateStrategy, population: &Population) -> RolloutFanout {
        let mut out = RolloutFanout::default();
        match strategy {
            UpdateStrategy::MoveEndpoints => {
                let (from, _) = self.moved_groups;
                for (edge, n) in population.per_edge(self.vn, from) {
                    *out.per_edge.entry(edge).or_default() += u64::from(n) * 2;
                }
            }
            UpdateStrategy::RewriteRules => {
                for (dst, rules) in &self.rewritten_rows {
                    for edge in population.edges_hosting(self.vn, *dst) {
                        *out.per_edge.entry(edge).or_default() += u64::from(*rules);
                    }
                }
            }
        }
        out
    }

    /// The cheaper strategy for this plan over `population`.
    pub fn cheaper_strategy(&self, population: &Population) -> UpdateStrategy {
        let mv = self.signaling_messages(UpdateStrategy::MoveEndpoints, population);
        let rw = self.signaling_messages(UpdateStrategy::RewriteRules, population);
        if mv <= rw {
            UpdateStrategy::MoveEndpoints
        } else {
            UpdateStrategy::RewriteRules
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    #[test]
    fn population_accounting() {
        let mut p = Population::new();
        p.add(RouterId(1), vn(1), GroupId(10), 5);
        p.add(RouterId(2), vn(1), GroupId(10), 3);
        p.add(RouterId(2), vn(1), GroupId(20), 7);
        assert_eq!(p.group_size(vn(1), GroupId(10)), 8);
        assert_eq!(
            p.edges_hosting(vn(1), GroupId(10)),
            vec![RouterId(1), RouterId(2)]
        );
        assert_eq!(p.total(), 15);
        assert_eq!(p.group_size(vn(2), GroupId(10)), 0);
    }

    #[test]
    fn small_group_favors_moving_endpoints() {
        // Few endpoints, rules spread over many edges.
        let mut p = Population::new();
        p.add(RouterId(1), vn(1), GroupId(1), 4); // 4 endpoints to move
        for e in 1..=50 {
            p.add(RouterId(e), vn(1), GroupId(1), 1);
        }
        let plan = UpdatePlan::acquisition(vn(1), GroupId(1), GroupId(2), 10);
        let mv = plan.signaling_messages(UpdateStrategy::MoveEndpoints, &p);
        let rw = plan.signaling_messages(UpdateStrategy::RewriteRules, &p);
        assert!(mv > 0 && rw > 0);
        assert_eq!(
            plan.cheaper_strategy(&p),
            if mv <= rw {
                UpdateStrategy::MoveEndpoints
            } else {
                UpdateStrategy::RewriteRules
            }
        );
    }

    #[test]
    fn huge_group_on_one_edge_favors_rewriting() {
        let mut p = Population::new();
        // 10,000 endpoints of group 1, all on one edge.
        p.add(RouterId(1), vn(1), GroupId(1), 10_000);
        let plan = UpdatePlan::acquisition(vn(1), GroupId(1), GroupId(2), 5);
        assert_eq!(
            plan.signaling_messages(UpdateStrategy::MoveEndpoints, &p),
            20_000
        );
        assert_eq!(plan.signaling_messages(UpdateStrategy::RewriteRules, &p), 5);
        assert_eq!(plan.cheaper_strategy(&p), UpdateStrategy::RewriteRules);
    }

    #[test]
    fn fanout_expansion_matches_cost_formula() {
        let mut p = Population::new();
        p.add(RouterId(1), vn(1), GroupId(1), 4);
        p.add(RouterId(2), vn(1), GroupId(1), 6);
        p.add(RouterId(3), vn(1), GroupId(2), 9);
        let plan = UpdatePlan::acquisition(vn(1), GroupId(1), GroupId(2), 12);
        for strategy in [UpdateStrategy::MoveEndpoints, UpdateStrategy::RewriteRules] {
            let f = plan.fanout(strategy, &p);
            assert_eq!(f.total(), plan.signaling_messages(strategy, &p));
        }
        // Move: 2 msgs/endpoint on the hosting edges only.
        let mv = plan.fanout(UpdateStrategy::MoveEndpoints, &p);
        assert_eq!(mv.per_edge.get(&RouterId(1)), Some(&8));
        assert_eq!(mv.per_edge.get(&RouterId(2)), Some(&12));
        assert_eq!(mv.edges(), 2);
        // Rewrite: the row toward group 1 reaches its hosting edges.
        let rw = plan.fanout(UpdateStrategy::RewriteRules, &p);
        assert_eq!(rw.per_edge.get(&RouterId(1)), Some(&12));
        assert_eq!(rw.per_edge.get(&RouterId(3)), None);
    }

    #[test]
    fn move_group_retags_in_place() {
        let mut p = Population::new();
        p.add(RouterId(1), vn(1), GroupId(1), 4);
        p.add(RouterId(2), vn(1), GroupId(1), 6);
        p.add(RouterId(2), vn(1), GroupId(2), 1);
        assert_eq!(p.move_group(vn(1), GroupId(1), GroupId(2)), 10);
        assert_eq!(p.group_size(vn(1), GroupId(1)), 0);
        assert_eq!(p.group_size(vn(1), GroupId(2)), 11);
        assert_eq!(
            p.per_edge(vn(1), GroupId(2)),
            vec![(RouterId(1), 4), (RouterId(2), 7),]
        );
        assert_eq!(p.total(), 11);
    }

    #[test]
    fn tiny_group_many_edges_favors_moving() {
        let mut p = Population::new();
        // 3 endpoints of group 1, but the row must reach 100 edges
        // because group 1 members sit on 100 edges… no — rows go to edges
        // hosting the *destination* group. Spread group 1 thin:
        for e in 0..100 {
            p.add(RouterId(e), vn(1), GroupId(1), 0);
        }
        p.add(RouterId(0), vn(1), GroupId(1), 1);
        p.add(RouterId(1), vn(1), GroupId(1), 1);
        p.add(RouterId(2), vn(1), GroupId(1), 1);
        let plan = UpdatePlan::acquisition(vn(1), GroupId(1), GroupId(2), 40);
        assert_eq!(
            plan.signaling_messages(UpdateStrategy::MoveEndpoints, &p),
            6
        );
        assert_eq!(
            plan.signaling_messages(UpdateStrategy::RewriteRules, &p),
            3 * 40
        );
        assert_eq!(plan.cheaper_strategy(&p), UpdateStrategy::MoveEndpoints);
    }
}
