//! # sda-policy
//!
//! The SDA **policy server**: the control-plane half that knows *who* may
//! talk to *whom* (the routing server knows *where* everyone is).
//!
//! Responsibilities, following §3.2.1:
//!
//! * **Authentication** ([`auth`]) — a RADIUS-style credential exchange.
//!   A successful authentication binds the endpoint to its `(VN, GroupId)`
//!   pair, the inputs to both macro- and micro-segmentation.
//! * **Connectivity matrix** ([`matrix`]) — per-VN group-pair rules with
//!   a configurable default action; "VNs never talk to each other" is
//!   structural (rules are scoped inside a VN).
//! * **Rule distribution** ([`sxp`]) — the SXP-style push of exactly the
//!   rule subset an edge router needs: with egress enforcement, only
//!   rules whose *destination* group is locally attached (§3.3.1, §5.3).
//! * **Policy updates** ([`update`]) — the two operational strategies of
//!   §5.4 (move endpoints between groups vs. rewrite the matrix), with
//!   signaling-cost accounting so the trade-off is measurable.
//! * **Per-packet enforcement** ([`enforce`]) — the reference group ACL
//!   (per-pair map) and the §5.3 enforcement-point choice (ingress vs.
//!   egress).
//! * **Compiled enforcement** ([`compile`]) — the production form of
//!   the same table: per VN, `(VnId, GroupId)` is interned into a dense
//!   id space (append-only, so delta installs never remap), and each
//!   source group owns a bitset row over dense destination ids with the
//!   default action folded in — one verdict is one shift + mask. Rows
//!   are `Arc`-shared (epoch publishes copy pointers, not rules) and
//!   the allow/drop counters are shared `Relaxed` atomics, so the data
//!   plane enforces through `&self` on any snapshot.
//!
//! [`server::PolicyServer`] ties these together behind the message-level
//! API the fabric speaks.

pub mod auth;
pub mod compile;
pub mod enforce;
pub mod matrix;
pub mod server;
pub mod sxp;
pub mod update;

pub use auth::{AuthMethod, AuthOutcome, AuthServer, Credential};
pub use compile::{AclCounters, AclVnView, CompiledAcl, CompiledMemStats};
pub use enforce::{EnforcementPoint, GroupAcl};
pub use matrix::{Action, ConnectivityMatrix, GroupRule};
pub use server::{EndpointProfile, PolicyServer};
pub use sxp::{egress_subset, ingress_subset, RuleSubset};
pub use update::{Population, RolloutFanout, UpdatePlan, UpdateStrategy};
