//! # sda-policy
//!
//! The SDA **policy server**: the control-plane half that knows *who* may
//! talk to *whom* (the routing server knows *where* everyone is).
//!
//! Responsibilities, following §3.2.1:
//!
//! * **Authentication** ([`auth`]) — a RADIUS-style credential exchange.
//!   A successful authentication binds the endpoint to its `(VN, GroupId)`
//!   pair, the inputs to both macro- and micro-segmentation.
//! * **Connectivity matrix** ([`matrix`]) — per-VN group-pair rules with
//!   a configurable default action; "VNs never talk to each other" is
//!   structural (rules are scoped inside a VN).
//! * **Rule distribution** ([`sxp`]) — the SXP-style push of exactly the
//!   rule subset an edge router needs: with egress enforcement, only
//!   rules whose *destination* group is locally attached (§3.3.1, §5.3).
//! * **Policy updates** ([`update`]) — the two operational strategies of
//!   §5.4 (move endpoints between groups vs. rewrite the matrix), with
//!   signaling-cost accounting so the trade-off is measurable.
//! * **Per-packet enforcement** ([`enforce`]) — the group ACL the data
//!   plane consults once per packet, and the §5.3 enforcement-point
//!   choice (ingress vs. egress).
//!
//! [`server::PolicyServer`] ties these together behind the message-level
//! API the fabric speaks.

pub mod auth;
pub mod enforce;
pub mod matrix;
pub mod server;
pub mod sxp;
pub mod update;

pub use auth::{AuthMethod, AuthOutcome, AuthServer, Credential};
pub use enforce::{EnforcementPoint, GroupAcl};
pub use matrix::{Action, ConnectivityMatrix, GroupRule};
pub use server::{EndpointProfile, PolicyServer};
pub use sxp::RuleSubset;
pub use update::{Population, UpdatePlan, UpdateStrategy};
