//! The compiled, compressed SGACL: dense group-id interning and bitset
//! verdict rows.
//!
//! [`GroupAcl`] is the *reference* enforcement table — a per-pair
//! `BTreeMap` probe per packet. At a thousand groups and a hundred
//! thousand rules that map is megabytes of pointer-chasing on the hot
//! path. [`CompiledAcl`] is the production form the data plane actually
//! consults:
//!
//! * **Dense interning.** Each VN interns the `GroupId`s its rules
//!   mention into a dense id space (`group_index`: a direct-mapped
//!   `raw id → dense id` vector, `u16::MAX` = not interned). Interning
//!   is *append-only*: delta installs may widen rows and append new
//!   ones but never remap an existing dense id, so published snapshots
//!   and the working copy always agree on layout.
//! * **Bitset rows.** Per source group, one `allow` row of `u64` words
//!   over dense destination ids — verdict = one shift + mask. The
//!   VN-compile-time default action is folded into the row (bits for
//!   cells without an explicit rule carry the default), so the common
//!   case (caller's default == compiled default) never looks anywhere
//!   else. A parallel `explicit` row records which cells hold a real
//!   rule; it serves the exact [`GroupAcl`] semantics when a caller
//!   passes a *different* default, and reconstructs the rule list for
//!   [`CompiledAcl::to_group_acl`].
//! * **`Arc`-shared publication.** The per-VN tables live behind
//!   `Arc`s: cloning a `CompiledAcl` (the clone-and-swap epoch publish)
//!   copies pointers, not rule bits, and a delta install copies only
//!   the touched VN (`Arc::make_mut`). Allow/drop counters are shared
//!   `Relaxed` atomics (the PR-4 per-entry-metadata discipline), so
//!   enforcement counts on `&self` from any snapshot and the working
//!   copy reads one coherent total.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sda_types::{GroupId, VnId};

use crate::enforce::GroupAcl;
use crate::matrix::{Action, ConnectivityMatrix, GroupRule};
use crate::sxp::RuleSubset;

/// Sentinel in `group_index`: raw group id not interned in this VN.
const NO_DENSE: u16 = u16::MAX;

/// Shared allow/drop counters — the Fig. 12 raw data, kept as `Relaxed`
/// atomics so every published snapshot and the working copy feed one
/// total (heuristic counters only; no ordering is implied, matching the
/// `CacheEntry` metadata contract).
#[derive(Default, Debug)]
pub struct AclCounters {
    allowed: AtomicU64,
    dropped: AtomicU64,
}

impl AclCounters {
    /// Records one enforcement outcome.
    #[inline]
    pub fn record(&self, action: Action) {
        match action {
            Action::Allow => self.allowed.fetch_add(1, Ordering::Relaxed),
            Action::Deny => self.dropped.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Records a batch of outcomes in two adds (the lockstep pass
    /// tallies locally and flushes once per run).
    #[inline]
    pub fn record_batch(&self, allowed: u64, dropped: u64) {
        if allowed != 0 {
            self.allowed.fetch_add(allowed, Ordering::Relaxed);
        }
        if dropped != 0 {
            self.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// `(allowed, dropped)` snapshot.
    #[inline]
    pub fn load(&self) -> (u64, u64) {
        (
            self.allowed.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
        )
    }
}

/// One VN's compiled rows. Private: reached through [`CompiledAcl`] or
/// an [`AclVnView`].
#[derive(Clone, Debug, Default)]
struct VnAcl {
    /// Direct map `raw GroupId → dense id` (`NO_DENSE` = absent).
    group_index: Vec<u16>,
    /// Inverse map `dense id → raw GroupId`.
    dense: Vec<u16>,
    /// Row stride in `u64` words.
    words_per_row: usize,
    /// Verdict bits: `allow[src * stride + dst/64] >> (dst%64) & 1`.
    /// Cells without an explicit rule carry the compiled default.
    allow: Vec<u64>,
    /// Which cells hold an explicit rule.
    explicit: Vec<u64>,
    /// Explicit cell count (O(1) `len`).
    rules: usize,
}

impl VnAcl {
    #[inline]
    fn dense_of(&self, g: GroupId) -> Option<usize> {
        match self.group_index.get(g.0 as usize) {
            Some(&d) if d != NO_DENSE => Some(d as usize),
            _ => None,
        }
    }

    /// Widens every row to `new_words`, filling fresh destination slots
    /// with the default pattern. Exact-size allocations: the compiled
    /// form's memory budget counts capacity.
    fn restride(&mut self, new_words: usize, fill: u64) {
        let old = self.words_per_row;
        let rows = self.allow.len().checked_div(old).unwrap_or(0);
        let mut allow = Vec::with_capacity(rows * new_words);
        let mut explicit = Vec::with_capacity(rows * new_words);
        for r in 0..rows {
            allow.extend_from_slice(&self.allow[r * old..(r + 1) * old]);
            allow.extend(std::iter::repeat_n(fill, new_words - old));
            explicit.extend_from_slice(&self.explicit[r * old..(r + 1) * old]);
            explicit.extend(std::iter::repeat_n(0u64, new_words - old));
        }
        self.allow = allow;
        self.explicit = explicit;
        self.words_per_row = new_words;
    }

    /// Interns `g`, appending a dense id (and its row) if new.
    fn intern(&mut self, g: GroupId, fill: u64) -> usize {
        let raw = g.0 as usize;
        if raw >= self.group_index.len() {
            self.group_index.resize(raw + 1, NO_DENSE);
        }
        if self.group_index[raw] != NO_DENSE {
            return self.group_index[raw] as usize;
        }
        let id = self.dense.len();
        assert!(id < NO_DENSE as usize, "dense group-id space exhausted");
        if id >= self.words_per_row * 64 {
            let need = id / 64 + 1;
            self.restride(need.max(self.words_per_row * 2), fill);
        }
        self.group_index[raw] = id as u16;
        self.dense.push(g.0);
        self.allow
            .extend(std::iter::repeat_n(fill, self.words_per_row));
        self.explicit
            .extend(std::iter::repeat_n(0u64, self.words_per_row));
        id
    }

    /// Pre-interns a group set with exactly-sized rows (bulk compile):
    /// one restride, one allocation, no growth slack.
    fn reserve_groups(&mut self, groups: &BTreeSet<u16>, fill: u64) {
        let fresh = groups
            .iter()
            .filter(|g| self.dense_of(GroupId(**g)).is_none())
            .count();
        let total = self.dense.len() + fresh;
        if total == 0 {
            return;
        }
        let need = total.div_ceil(64);
        if need > self.words_per_row {
            self.restride(need, fill);
        }
        let grow = total * self.words_per_row - self.allow.len();
        self.allow.reserve_exact(grow);
        self.explicit.reserve_exact(grow);
        self.dense.reserve_exact(fresh);
        for g in groups {
            self.intern(GroupId(*g), fill);
        }
    }

    /// Sets one cell; returns true when the cell was not explicit yet.
    fn set_cell(&mut self, src: GroupId, dst: GroupId, action: Action, fill: u64) -> bool {
        let s = self.intern(src, fill);
        let d = self.intern(dst, fill);
        let idx = s * self.words_per_row + d / 64;
        let mask = 1u64 << (d % 64);
        let newly = self.explicit[idx] & mask == 0;
        self.explicit[idx] |= mask;
        match action {
            Action::Allow => self.allow[idx] |= mask,
            Action::Deny => self.allow[idx] &= !mask,
        }
        if newly {
            self.rules += 1;
        }
        newly
    }

    /// The verdict for `src → dst`. `default` is the caller's fallback
    /// for cells without an explicit rule; `compiled` is the default
    /// folded into the rows. When they agree (the steady state) the
    /// answer is the allow bit alone.
    #[inline]
    fn verdict(&self, src: GroupId, dst: GroupId, default: Action, compiled: Action) -> Action {
        let (Some(s), Some(d)) = (self.dense_of(src), self.dense_of(dst)) else {
            return default;
        };
        let idx = s * self.words_per_row + d / 64;
        let mask = 1u64 << (d % 64);
        if default == compiled || self.explicit[idx] & mask != 0 {
            if self.allow[idx] & mask != 0 {
                Action::Allow
            } else {
                Action::Deny
            }
        } else {
            default
        }
    }

    /// Visits every explicit rule (unspecified order).
    fn for_each_rule(&self, mut f: impl FnMut(GroupRule)) {
        let w = self.words_per_row;
        for (s, &src_raw) in self.dense.iter().enumerate() {
            for wi in 0..w {
                let idx = s * w + wi;
                let mut bits = self.explicit[idx];
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let d = wi * 64 + b;
                    f(GroupRule {
                        src: GroupId(src_raw),
                        dst: GroupId(self.dense[d]),
                        action: if self.allow[idx] & (1u64 << b) != 0 {
                            Action::Allow
                        } else {
                            Action::Deny
                        },
                    });
                }
            }
        }
    }

    fn mem_bytes(&self) -> (usize, usize) {
        let interner =
            (self.group_index.capacity() + self.dense.capacity()) * std::mem::size_of::<u16>();
        let rows = (self.allow.capacity() + self.explicit.capacity()) * std::mem::size_of::<u64>();
        (interner, rows)
    }
}

/// Memory accounting for the compiled form (capacity, not just length —
/// the same honesty as the trie `MemStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompiledMemStats {
    /// VNs with at least one interned group.
    pub vns: usize,
    /// Interned groups across VNs.
    pub groups: usize,
    /// Explicit rules across VNs.
    pub rules: usize,
    /// Bytes in the direct-mapped interners.
    pub interner_bytes: usize,
    /// Bytes in the allow/explicit bitset rows.
    pub row_bytes: usize,
    /// Total compiled bytes (interners + rows + per-VN headers).
    pub total_bytes: usize,
}

/// A borrowed per-VN enforcement view: the lockstep pass hoists one of
/// these per same-VN run so the per-packet work is the bit probe alone.
#[derive(Clone, Copy)]
pub struct AclVnView<'a> {
    acl: Option<&'a VnAcl>,
    compiled_default: Action,
    counters: &'a AclCounters,
}

impl AclVnView<'_> {
    /// Non-counting verdict for `src → dst` in the view's VN.
    #[inline]
    pub fn check(&self, src: GroupId, dst: GroupId, default: Action) -> Action {
        match self.acl {
            Some(a) => a.verdict(src, dst, default, self.compiled_default),
            None => default,
        }
    }

    /// Counting verdict (`Relaxed` shared counters).
    #[inline]
    pub fn enforce(&self, src: GroupId, dst: GroupId, default: Action) -> Action {
        let action = self.check(src, dst, default);
        self.counters.record(action);
        action
    }

    /// The shared counters, for batched `record_batch` flushes.
    #[inline]
    pub fn counters(&self) -> &AclCounters {
        self.counters
    }
}

/// The compiled SGACL: dense-interned, bitset-compressed, `Arc`-shared.
///
/// Mirrors the [`GroupAcl`] API verdict-for-verdict (the property tests
/// assert it), with two deliberate differences: `enforce` takes `&self`
/// (counters are shared atomics, so enforcement works on a published
/// snapshot), and `Clone` is O(#VNs) pointer copies — the epoch publish
/// stops deep-copying the rule map.
#[derive(Clone, Debug)]
pub struct CompiledAcl {
    /// Sorted by VN for binary-search probes.
    vns: Vec<(VnId, Arc<VnAcl>)>,
    /// The default folded into the rows at compile time. A caller
    /// passing a different per-call default still gets exact
    /// [`GroupAcl`] semantics through the `explicit` bits — just off
    /// the one-load fast path.
    compiled_default: Action,
    /// Installed matrix version (staleness detection).
    version: u64,
    /// Allow/drop totals shared across clones.
    counters: Arc<AclCounters>,
    /// Explicit rule count across VNs (O(1) `len`).
    rules: usize,
}

impl Default for CompiledAcl {
    fn default() -> Self {
        Self::with_default(Action::Deny)
    }
}

impl CompiledAcl {
    /// Empty ACL compiled around the SDA deny default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty ACL folding `default` into the rows. Pick the fabric's
    /// configured default action — mismatched per-call defaults stay
    /// correct but pay an extra load.
    pub fn with_default(default: Action) -> Self {
        CompiledAcl {
            vns: Vec::new(),
            compiled_default: default,
            version: 0,
            counters: Arc::new(AclCounters::default()),
            rules: 0,
        }
    }

    /// Compiles `matrix` wholesale, folding in its default action.
    pub fn compile(matrix: &ConnectivityMatrix) -> Self {
        let mut acl = Self::with_default(matrix.default_action());
        acl.install_matrix(matrix);
        acl
    }

    /// The default action folded into the rows.
    pub fn compiled_default(&self) -> Action {
        self.compiled_default
    }

    #[inline]
    fn fill(&self) -> u64 {
        match self.compiled_default {
            Action::Allow => !0u64,
            Action::Deny => 0,
        }
    }

    #[inline]
    fn vn_acl(&self, vn: VnId) -> Option<&VnAcl> {
        self.vns
            .binary_search_by_key(&vn, |(v, _)| *v)
            .ok()
            .map(|i| &*self.vns[i].1)
    }

    fn ensure_vn(&mut self, vn: VnId) -> usize {
        match self.vns.binary_search_by_key(&vn, |(v, _)| *v) {
            Ok(i) => i,
            Err(i) => {
                self.vns.insert(i, (vn, Arc::new(VnAcl::default())));
                i
            }
        }
    }

    /// Installs (merges) a rule subset — the SXP delta path. Only the
    /// VNs the subset touches are copied (`Arc::make_mut`); untouched
    /// VNs keep sharing rows with every published snapshot.
    pub fn install(&mut self, subset: &RuleSubset) {
        let fill = self.fill();
        let mut cur: Option<(VnId, usize)> = None;
        for (vn, rule) in &subset.rules {
            let i = match cur {
                Some((v, i)) if v == *vn => i,
                _ => {
                    let i = self.ensure_vn(*vn);
                    cur = Some((*vn, i));
                    i
                }
            };
            let slot = Arc::make_mut(&mut self.vns[i].1);
            if slot.set_cell(rule.src, rule.dst, rule.action, fill) {
                self.rules += 1;
            }
        }
        self.version = self.version.max(subset.version);
    }

    /// Replaces all rules with `subset` (full refresh).
    pub fn replace(&mut self, subset: &RuleSubset) {
        self.vns.clear();
        self.rules = 0;
        self.install(subset);
    }

    /// Compiles every explicit cell of `matrix` into the rows. The bulk
    /// path pre-sizes each VN's interner and rows exactly (no growth
    /// slack), so this is also what the memory budget is asserted on.
    pub fn install_matrix(&mut self, matrix: &ConnectivityMatrix) {
        let fill = self.fill();
        let mut groups = BTreeSet::new();
        for vn in matrix.vns() {
            groups.clear();
            for r in matrix.rules_of(vn) {
                groups.insert(r.src.0);
                groups.insert(r.dst.0);
            }
            let i = self.ensure_vn(vn);
            let slot = Arc::make_mut(&mut self.vns[i].1);
            slot.reserve_groups(&groups, fill);
            for r in matrix.rules_of(vn) {
                if slot.set_cell(r.src, r.dst, r.action, fill) {
                    self.rules += 1;
                }
            }
        }
        self.version = self.version.max(matrix.version());
    }

    /// Non-counting verdict (tests, planning) — exact [`GroupAcl::check`]
    /// semantics.
    #[inline]
    pub fn check(&self, vn: VnId, src: GroupId, dst: GroupId, default: Action) -> Action {
        match self.vn_acl(vn) {
            Some(a) => a.verdict(src, dst, default, self.compiled_default),
            None => default,
        }
    }

    /// Counting verdict on `&self`: the data-plane entry point. The
    /// shared `Relaxed` counters make this legal from any snapshot.
    #[inline]
    pub fn enforce(&self, vn: VnId, src: GroupId, dst: GroupId, default: Action) -> Action {
        let action = self.check(vn, src, dst, default);
        self.counters.record(action);
        action
    }

    /// A per-VN view for the lockstep pass: probe the VN once per run,
    /// then each packet is one bit test.
    #[inline]
    pub fn vn_view(&self, vn: VnId) -> AclVnView<'_> {
        AclVnView {
            acl: self.vn_acl(vn),
            compiled_default: self.compiled_default,
            counters: &self.counters,
        }
    }

    /// Explicit rule count — the §5.3 "data plane state" metric.
    pub fn len(&self) -> usize {
        self.rules
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules == 0
    }

    /// `(allowed, dropped)` counters (shared across clones).
    pub fn counters(&self) -> (u64, u64) {
        self.counters.load()
    }

    /// Dropped-per-mille over all enforcement decisions (Fig. 12's
    /// y-axis). `None` before any traffic.
    pub fn drop_permille(&self) -> Option<f64> {
        let (allowed, dropped) = self.counters();
        let total = allowed + dropped;
        if total == 0 {
            return None;
        }
        Some(dropped as f64 * 1000.0 / total as f64)
    }

    /// Installed matrix version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Clears rules, counters and version (edge reboot). The counter
    /// block is replaced, not zeroed, so previously published snapshots
    /// keep their totals.
    pub fn clear(&mut self) {
        self.vns.clear();
        self.rules = 0;
        self.version = 0;
        self.counters = Arc::new(AclCounters::default());
    }

    /// Decompiles into the reference [`GroupAcl`] (same rules, same
    /// version, zeroed counters) — the differential oracle's model side.
    pub fn to_group_acl(&self) -> GroupAcl {
        let mut rules = Vec::with_capacity(self.rules);
        for (vn, acl) in &self.vns {
            acl.for_each_rule(|r| rules.push((*vn, r)));
        }
        let mut acl = GroupAcl::new();
        acl.install(&RuleSubset {
            version: self.version,
            rules,
        });
        acl
    }

    /// Compiled-memory accounting (capacities, not lengths).
    pub fn mem_stats(&self) -> CompiledMemStats {
        let mut stats = CompiledMemStats {
            vns: self.vns.len(),
            rules: self.rules,
            ..Default::default()
        };
        for (_, acl) in &self.vns {
            let (interner, rows) = acl.mem_bytes();
            stats.groups += acl.dense.len();
            stats.interner_bytes += interner;
            stats.row_bytes += rows;
        }
        stats.total_bytes = stats.interner_bytes
            + stats.row_bytes
            + self.vns.capacity() * std::mem::size_of::<(VnId, Arc<VnAcl>)>()
            + self.vns.len() * std::mem::size_of::<VnAcl>();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    fn subset(version: u64, rules: &[(u32, u16, u16, Action)]) -> RuleSubset {
        RuleSubset {
            version,
            rules: rules
                .iter()
                .map(|(v, s, d, a)| {
                    (
                        vn(*v),
                        GroupRule {
                            src: GroupId(*s),
                            dst: GroupId(*d),
                            action: *a,
                        },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn verdicts_match_reference_semantics() {
        let mut acl = CompiledAcl::new();
        acl.install(&subset(
            1,
            &[(1, 1, 2, Action::Allow), (1, 3, 2, Action::Deny)],
        ));
        assert_eq!(
            acl.check(vn(1), GroupId(1), GroupId(2), Action::Deny),
            Action::Allow
        );
        assert_eq!(
            acl.check(vn(1), GroupId(3), GroupId(2), Action::Allow),
            Action::Deny
        );
        // Unmatched interned pair → caller default, both polarities.
        assert_eq!(
            acl.check(vn(1), GroupId(2), GroupId(1), Action::Deny),
            Action::Deny
        );
        assert_eq!(
            acl.check(vn(1), GroupId(2), GroupId(1), Action::Allow),
            Action::Allow
        );
        // Un-interned group / unknown VN → caller default.
        assert_eq!(
            acl.check(vn(1), GroupId(9), GroupId(2), Action::Allow),
            Action::Allow
        );
        assert_eq!(
            acl.check(vn(7), GroupId(1), GroupId(2), Action::Deny),
            Action::Deny
        );
    }

    #[test]
    fn enforce_counts_on_shared_ref() {
        let acl = {
            let mut a = CompiledAcl::new();
            a.install(&subset(1, &[(1, 1, 2, Action::Allow)]));
            a
        };
        assert_eq!(
            acl.enforce(vn(1), GroupId(1), GroupId(2), Action::Deny),
            Action::Allow
        );
        assert_eq!(
            acl.enforce(vn(1), GroupId(5), GroupId(2), Action::Deny),
            Action::Deny
        );
        assert_eq!(acl.counters(), (1, 1));
        let pm = acl.drop_permille().unwrap();
        assert!((pm - 500.0).abs() < f64::EPSILON);
    }

    #[test]
    fn clone_shares_rows_and_counters() {
        let mut acl = CompiledAcl::new();
        acl.install(&subset(1, &[(1, 1, 2, Action::Allow)]));
        let published = acl.clone();
        // Counting on the snapshot is visible through the working copy.
        published.enforce(vn(1), GroupId(1), GroupId(2), Action::Deny);
        assert_eq!(acl.counters(), (1, 0));
        // A delta install copies the touched VN only; the snapshot keeps
        // its rules.
        acl.install(&subset(2, &[(1, 1, 2, Action::Deny)]));
        assert_eq!(
            acl.check(vn(1), GroupId(1), GroupId(2), Action::Allow),
            Action::Deny
        );
        assert_eq!(
            published.check(vn(1), GroupId(1), GroupId(2), Action::Allow),
            Action::Allow
        );
        // clear() detaches the counters; the snapshot's survive.
        acl.clear();
        assert_eq!(acl.counters(), (0, 0));
        assert_eq!(published.counters(), (1, 0));
    }

    #[test]
    fn delta_install_widens_without_remapping() {
        let mut acl = CompiledAcl::new();
        acl.install(&subset(1, &[(1, 0, 1, Action::Allow)]));
        // Push past one word and past the initial stride.
        let wide: Vec<(u32, u16, u16, Action)> = (0..200)
            .map(|d| (1u32, 0u16, d as u16, Action::Allow))
            .collect();
        acl.install(&subset(2, &wide));
        assert_eq!(acl.len(), 200);
        for d in 0..200u16 {
            assert_eq!(
                acl.check(vn(1), GroupId(0), GroupId(d), Action::Deny),
                Action::Allow,
                "dst {d}"
            );
        }
        assert_eq!(
            acl.check(vn(1), GroupId(1), GroupId(0), Action::Deny),
            Action::Deny
        );
        assert_eq!(acl.version(), 2);
    }

    #[test]
    fn install_overwrite_keeps_len_exact() {
        let mut acl = CompiledAcl::new();
        acl.install(&subset(1, &[(1, 1, 2, Action::Allow)]));
        acl.install(&subset(2, &[(1, 1, 2, Action::Deny)]));
        assert_eq!(acl.len(), 1);
        assert_eq!(
            acl.check(vn(1), GroupId(1), GroupId(2), Action::Allow),
            Action::Deny
        );
        acl.replace(&subset(3, &[(2, 5, 5, Action::Allow)]));
        assert_eq!(acl.len(), 1);
        assert_eq!(
            acl.check(vn(1), GroupId(1), GroupId(2), Action::Allow),
            Action::Allow
        );
    }

    #[test]
    fn allow_default_fold_matches_reference() {
        let mut m = ConnectivityMatrix::with_default(Action::Allow);
        m.set_rule(vn(1), GroupId(1), GroupId(2), Action::Deny);
        m.set_rule(vn(1), GroupId(3), GroupId(4), Action::Allow);
        let acl = CompiledAcl::compile(&m);
        assert_eq!(acl.compiled_default(), Action::Allow);
        // Fast path: caller default == compiled default.
        assert_eq!(
            acl.check(vn(1), GroupId(1), GroupId(2), Action::Allow),
            Action::Deny
        );
        assert_eq!(
            acl.check(vn(1), GroupId(2), GroupId(1), Action::Allow),
            Action::Allow
        );
        // Slow path: caller default differs — explicit cells still win,
        // non-explicit cells follow the caller.
        assert_eq!(
            acl.check(vn(1), GroupId(1), GroupId(2), Action::Deny),
            Action::Deny
        );
        assert_eq!(
            acl.check(vn(1), GroupId(3), GroupId(4), Action::Deny),
            Action::Allow
        );
        assert_eq!(
            acl.check(vn(1), GroupId(2), GroupId(1), Action::Deny),
            Action::Deny
        );
    }

    #[test]
    fn to_group_acl_round_trips() {
        let mut m = ConnectivityMatrix::new();
        m.set_rule(vn(1), GroupId(1), GroupId(2), Action::Allow);
        m.set_rule(vn(1), GroupId(3), GroupId(2), Action::Deny);
        m.set_rule(vn(2), GroupId(5), GroupId(6), Action::Allow);
        let compiled = CompiledAcl::compile(&m);
        let reference = compiled.to_group_acl();
        assert_eq!(reference.len(), compiled.len());
        assert_eq!(reference.version(), compiled.version());
        for v in [vn(1), vn(2)] {
            for s in 0..8u16 {
                for d in 0..8u16 {
                    for default in [Action::Allow, Action::Deny] {
                        assert_eq!(
                            compiled.check(v, GroupId(s), GroupId(d), default),
                            reference.check(v, GroupId(s), GroupId(d), default),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn vn_view_probes_once_per_run() {
        let mut acl = CompiledAcl::new();
        acl.install(&subset(1, &[(1, 1, 2, Action::Allow)]));
        let view = acl.vn_view(vn(1));
        assert_eq!(
            view.check(GroupId(1), GroupId(2), Action::Deny),
            Action::Allow
        );
        assert_eq!(
            view.enforce(GroupId(9), GroupId(2), Action::Deny),
            Action::Deny
        );
        view.counters().record_batch(3, 2);
        assert_eq!(acl.counters(), (3, 3));
        // Unknown VN: every verdict is the caller default.
        let missing = acl.vn_view(vn(9));
        assert_eq!(
            missing.check(GroupId(1), GroupId(2), Action::Allow),
            Action::Allow
        );
    }

    #[test]
    fn bulk_compile_memory_is_quadratic_bits_not_map_nodes() {
        // 256 groups, full mesh of one source row each: rows must be
        // ~2 * 256 * ceil(256/64) * 8 bytes, far under a BTreeMap of
        // 256*256 entries.
        let mut m = ConnectivityMatrix::new();
        for s in 0..256u16 {
            for d in 0..256u16 {
                m.set_rule(vn(1), GroupId(s), GroupId(d), Action::Allow);
            }
        }
        let acl = CompiledAcl::compile(&m);
        let stats = acl.mem_stats();
        assert_eq!(stats.groups, 256);
        assert_eq!(stats.rules, 256 * 256);
        assert_eq!(stats.row_bytes, 2 * 256 * 4 * 8);
        assert!(stats.total_bytes < 64 * 1024, "{stats:?}");
    }
}
