//! The policy server: authentication + matrix + distribution in one
//! addressable service.

use sda_types::{GroupId, MacAddr, VnId};

use crate::auth::{AuthMethod, AuthOutcome, AuthServer, Credential};
use crate::matrix::{Action, ConnectivityMatrix};
use crate::sxp::{egress_subset, RuleSubset};

/// The public, queryable part of an endpoint's policy state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EndpointProfile {
    /// Macro-segmentation VN.
    pub vn: VnId,
    /// Micro-segmentation group.
    pub group: GroupId,
}

/// What a successful onboarding hand-off to the edge router contains
/// (Fig. 3, step 2): the binding plus the egress rule subset for the
/// endpoint's group.
#[derive(Clone, Debug)]
pub struct OnboardingGrant {
    /// The endpoint's binding.
    pub profile: EndpointProfile,
    /// Rules where the endpoint's group is the destination.
    pub rules: RuleSubset,
    /// AAA round trips consumed (drives onboarding latency).
    pub auth_round_trips: u32,
}

/// The logically centralized policy server of Fig. 1.
#[derive(Default)]
pub struct PolicyServer {
    auth: AuthServer,
    matrix: ConnectivityMatrix,
}

impl PolicyServer {
    /// Creates an empty server (deny-by-default matrix).
    pub fn new() -> Self {
        PolicyServer::default()
    }

    /// Creates a server with an explicit default action.
    pub fn with_default_action(action: Action) -> Self {
        PolicyServer {
            auth: AuthServer::new(),
            matrix: ConnectivityMatrix::with_default(action),
        }
    }

    /// Mutable access to the connectivity matrix (operator intent).
    pub fn matrix_mut(&mut self) -> &mut ConnectivityMatrix {
        &mut self.matrix
    }

    /// Read access to the connectivity matrix.
    pub fn matrix(&self) -> &ConnectivityMatrix {
        &self.matrix
    }

    /// Mutable access to the credential store.
    pub fn auth_mut(&mut self) -> &mut AuthServer {
        &mut self.auth
    }

    /// Read access to the credential store.
    pub fn auth(&self) -> &AuthServer {
        &self.auth
    }

    /// Enrolls an endpoint: operator declares identity, secret and
    /// `(VN, group)` in one step (the declarative interface of §3.1).
    pub fn enroll(
        &mut self,
        identity: MacAddr,
        secret: u64,
        vn: VnId,
        group: GroupId,
        method: AuthMethod,
    ) {
        self.auth.enroll(identity, secret, vn, group, method);
    }

    /// Full onboarding exchange (Fig. 3 steps 1–2): authenticate, then
    /// return the binding and the egress rule subset for that group.
    pub fn onboard(&mut self, cred: &Credential) -> Option<OnboardingGrant> {
        let method = self.auth.method_of(cred.identity);
        match self.auth.authenticate(cred) {
            AuthOutcome::Accept { vn, group } => {
                let rules = egress_subset(&self.matrix, &[(vn, group)]);
                Some(OnboardingGrant {
                    profile: EndpointProfile { vn, group },
                    rules,
                    auth_round_trips: method.round_trips(),
                })
            }
            AuthOutcome::Reject => None,
        }
    }

    /// Re-authentication after a policy change (§5.3: on egress, the
    /// `(Overlay IP, GroupId)` pair refreshes automatically because the
    /// endpoint re-authenticates). Secret was verified this session, so
    /// only the binding is re-read.
    pub fn reauthenticate(&self, identity: MacAddr) -> Option<EndpointProfile> {
        self.auth
            .binding_of(identity)
            .map(|(vn, group)| EndpointProfile { vn, group })
    }

    /// The egress rule subset for a set of locally attached bindings —
    /// what SXP pushes when an edge's population changes.
    pub fn rules_for_edge(&self, local: &[(VnId, GroupId)]) -> RuleSubset {
        egress_subset(&self.matrix, local)
    }

    /// The verdict for `src → dst` in `vn` (the authoritative check;
    /// edges enforce cached copies of it).
    pub fn check(&self, vn: VnId, src: GroupId, dst: GroupId) -> Action {
        self.matrix.check(vn, src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    fn server_with_one_endpoint() -> (PolicyServer, MacAddr) {
        let mut s = PolicyServer::new();
        let mac = MacAddr::from_seed(1);
        s.enroll(mac, 99, vn(1), GroupId(2), AuthMethod::Simple);
        s.matrix_mut()
            .set_rule(vn(1), GroupId(1), GroupId(2), Action::Allow);
        s.matrix_mut()
            .set_rule(vn(1), GroupId(3), GroupId(2), Action::Deny);
        s.matrix_mut()
            .set_rule(vn(1), GroupId(2), GroupId(9), Action::Allow);
        (s, mac)
    }

    #[test]
    fn onboarding_returns_binding_and_destination_rules() {
        let (mut s, mac) = server_with_one_endpoint();
        let grant = s
            .onboard(&Credential {
                identity: mac,
                secret: 99,
            })
            .unwrap();
        assert_eq!(
            grant.profile,
            EndpointProfile {
                vn: vn(1),
                group: GroupId(2)
            }
        );
        assert_eq!(grant.auth_round_trips, 1);
        // Exactly the rules whose destination is group 2.
        assert_eq!(grant.rules.len(), 2);
        assert!(grant.rules.rules.iter().all(|(_, r)| r.dst == GroupId(2)));
    }

    #[test]
    fn onboarding_rejects_bad_secret() {
        let (mut s, mac) = server_with_one_endpoint();
        assert!(s
            .onboard(&Credential {
                identity: mac,
                secret: 0
            })
            .is_none());
    }

    #[test]
    fn reauth_reflects_group_moves() {
        let (mut s, mac) = server_with_one_endpoint();
        assert_eq!(s.reauthenticate(mac).unwrap().group, GroupId(2));
        s.auth_mut().reassign_group(mac, GroupId(7));
        assert_eq!(s.reauthenticate(mac).unwrap().group, GroupId(7));
    }

    #[test]
    fn check_delegates_to_matrix() {
        let (s, _) = server_with_one_endpoint();
        assert_eq!(s.check(vn(1), GroupId(1), GroupId(2)), Action::Allow);
        assert_eq!(s.check(vn(1), GroupId(3), GroupId(2)), Action::Deny);
        assert_eq!(s.check(vn(1), GroupId(4), GroupId(4)), Action::Deny);
    }
}
