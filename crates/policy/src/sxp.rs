//! SXP-style rule distribution.
//!
//! The policy server pushes group rules to edge routers with the
//! Scalable-Group Tag eXchange Protocol. With **egress** enforcement an
//! edge only needs the matrix rows whose *destination* group is attached
//! locally; with **ingress** enforcement it would need every rule whose
//! *source* group is local — and, transitively, reachability to all
//! destination groups, which is the state blow-up §5.3 avoids.

use sda_types::{GroupId, VnId};

use crate::matrix::{ConnectivityMatrix, GroupRule};

/// The rules shipped to one edge router, tagged with the matrix version
/// so the edge can detect staleness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleSubset {
    /// Matrix version this subset was computed from.
    pub version: u64,
    /// The rules, ascending by (vn, src, dst).
    pub rules: Vec<(VnId, GroupRule)>,
}

impl RuleSubset {
    /// Number of rules in the subset.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the subset carries no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Computes the egress-enforcement subset for an edge whose locally
/// attached endpoints span `local` `(vn, group)` pairs.
pub fn egress_subset(matrix: &ConnectivityMatrix, local: &[(VnId, GroupId)]) -> RuleSubset {
    let mut rules = Vec::new();
    let mut vns: Vec<VnId> = local.iter().map(|(vn, _)| *vn).collect();
    vns.sort_unstable();
    vns.dedup();
    for vn in vns {
        // Sorted + deduped once per VN so `rules_toward` can
        // binary-search instead of scanning the local set per rule.
        let mut dst_groups: Vec<GroupId> = local
            .iter()
            .filter(|(v, _)| *v == vn)
            .map(|(_, g)| *g)
            .collect();
        dst_groups.sort_unstable();
        dst_groups.dedup();
        for r in matrix.rules_toward(vn, &dst_groups) {
            rules.push((vn, r));
        }
    }
    RuleSubset {
        version: matrix.version(),
        rules,
    }
}

/// Computes the ingress-enforcement subset: every rule whose *source*
/// group is local. Implemented for the §5.3 ablation.
pub fn ingress_subset(matrix: &ConnectivityMatrix, local: &[(VnId, GroupId)]) -> RuleSubset {
    let mut rules = Vec::new();
    let mut vns: Vec<VnId> = local.iter().map(|(vn, _)| *vn).collect();
    vns.sort_unstable();
    vns.dedup();
    for vn in vns {
        let mut src_groups: Vec<GroupId> = local
            .iter()
            .filter(|(v, _)| *v == vn)
            .map(|(_, g)| *g)
            .collect();
        src_groups.sort_unstable();
        src_groups.dedup();
        for r in matrix.rules_of(vn) {
            if src_groups.binary_search(&r.src).is_ok() {
                rules.push((vn, r));
            }
        }
    }
    RuleSubset {
        version: matrix.version(),
        rules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Action;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    fn demo_matrix() -> ConnectivityMatrix {
        let mut m = ConnectivityMatrix::new();
        // VN 1: groups 1,2,3; 1→2 allow, 3→2 deny, 2→1 allow, 1→3 allow.
        m.set_rule(vn(1), GroupId(1), GroupId(2), Action::Allow);
        m.set_rule(vn(1), GroupId(3), GroupId(2), Action::Deny);
        m.set_rule(vn(1), GroupId(2), GroupId(1), Action::Allow);
        m.set_rule(vn(1), GroupId(1), GroupId(3), Action::Allow);
        // VN 2: 5→6 allow.
        m.set_rule(vn(2), GroupId(5), GroupId(6), Action::Allow);
        m
    }

    #[test]
    fn egress_subset_only_local_destinations() {
        let m = demo_matrix();
        // Edge hosts endpoints of group 2 in VN 1.
        let s = egress_subset(&m, &[(vn(1), GroupId(2))]);
        assert_eq!(s.len(), 2, "both rules toward group 2");
        assert!(s
            .rules
            .iter()
            .all(|(v, r)| *v == vn(1) && r.dst == GroupId(2)));
        assert_eq!(s.version, m.version());
    }

    #[test]
    fn ingress_subset_only_local_sources() {
        let m = demo_matrix();
        let s = ingress_subset(&m, &[(vn(1), GroupId(1))]);
        assert_eq!(s.len(), 2, "1→2 and 1→3");
        assert!(s.rules.iter().all(|(_, r)| r.src == GroupId(1)));
    }

    #[test]
    fn other_vn_rules_never_leak() {
        let m = demo_matrix();
        let s = egress_subset(&m, &[(vn(1), GroupId(2)), (vn(1), GroupId(3))]);
        assert!(s.rules.iter().all(|(v, _)| *v == vn(1)));
        // Group 6 lives in VN 2 only; asking within VN 1 yields nothing.
        let s = egress_subset(&m, &[(vn(1), GroupId(6))]);
        assert!(s.is_empty());
    }

    #[test]
    fn egress_typically_smaller_than_ingress_for_popular_sources() {
        // A client group that talks to many server groups: ingress would
        // carry all of them, egress only the locally served rows.
        let mut m = ConnectivityMatrix::new();
        for dst in 10..30 {
            m.set_rule(vn(1), GroupId(1), GroupId(dst), Action::Allow);
        }
        let local = [(vn(1), GroupId(1)), (vn(1), GroupId(10))];
        let egress = egress_subset(&m, &local);
        let ingress = ingress_subset(&m, &local);
        assert_eq!(egress.len(), 1, "only the rule toward local group 10");
        assert_eq!(ingress.len(), 20, "every rule sourced by local group 1");
        assert!(egress.len() < ingress.len());
    }
}
