//! Per-packet policy enforcement: where it happens and the table that
//! does it.
//!
//! The connectivity matrix ([`crate::matrix`]) is the operator's intent;
//! this module is the data-plane side — the group ACL an edge router
//! consults once per packet, plus the enforcement-point choice of §5.3.
//! It lives in `sda-policy` (not `sda-core`) so the forwarding engine in
//! `sda-dataplane` can enforce without depending on the router nodes.

use std::collections::BTreeMap;

use sda_types::{GroupId, VnId};

use crate::matrix::{Action, ConnectivityMatrix};
use crate::sxp::RuleSubset;

/// Where group policy is enforced (§5.3 trade-off).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EnforcementPoint {
    /// At the destination edge: less data-plane state, some wasted
    /// bandwidth on traffic that will be dropped. SDA's choice.
    #[default]
    Egress,
    /// At the source edge: saves the wasted transit, but needs
    /// destination-group knowledge everywhere (the signaling problem of
    /// Fig. 13).
    Ingress,
}

/// One edge's installed group rules and enforcement counters.
///
/// The egress pipeline's second stage: an exact-match lookup on
/// `(source GroupId, destination GroupId)` within the packet's VN
/// (§3.3.2). The table holds the SXP-distributed subset of the
/// connectivity matrix plus hit/drop counters — the raw data behind
/// Fig. 12's "permille hits on drop rules over all hits".
#[derive(Default, Debug, Clone)]
pub struct GroupAcl {
    rules: BTreeMap<(VnId, GroupId, GroupId), Action>,
    /// Matrix version the rules came from (staleness detection).
    version: u64,
    /// Packets permitted.
    allowed: u64,
    /// Packets dropped by an explicit deny or the default action.
    dropped: u64,
}

impl GroupAcl {
    /// Empty ACL (default-deny until rules arrive).
    pub fn new() -> Self {
        GroupAcl::default()
    }

    /// Installs (merges) a rule subset from the policy server.
    pub fn install(&mut self, subset: &RuleSubset) {
        for (vn, rule) in &subset.rules {
            self.rules.insert((*vn, rule.src, rule.dst), rule.action);
        }
        self.version = self.version.max(subset.version);
    }

    /// Replaces all rules with `subset` (full refresh).
    pub fn replace(&mut self, subset: &RuleSubset) {
        self.rules.clear();
        self.install(subset);
    }

    /// Installs every explicit cell of `matrix` — the "switch owns the
    /// whole policy matrix" configuration the dataplane engine uses when
    /// no SXP subsetting is in play.
    pub fn install_matrix(&mut self, matrix: &ConnectivityMatrix) {
        for vn in matrix.vns() {
            for rule in matrix.rules_of(vn) {
                self.rules.insert((vn, rule.src, rule.dst), rule.action);
            }
        }
        self.version = self.version.max(matrix.version());
    }

    /// The verdict for `src → dst` in `vn`, updating counters.
    /// Unmatched pairs use `default` (deny in SDA deployments).
    pub fn enforce(&mut self, vn: VnId, src: GroupId, dst: GroupId, default: Action) -> Action {
        let action = self.rules.get(&(vn, src, dst)).copied().unwrap_or(default);
        match action {
            Action::Allow => self.allowed += 1,
            Action::Deny => self.dropped += 1,
        }
        action
    }

    /// Non-counting check (tests, planning).
    pub fn check(&self, vn: VnId, src: GroupId, dst: GroupId, default: Action) -> Action {
        self.rules.get(&(vn, src, dst)).copied().unwrap_or(default)
    }

    /// Installed rule count — the §5.3 "data plane state" metric.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// `(allowed, dropped)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.allowed, self.dropped)
    }

    /// Drops dropped-per-mille over all enforcement decisions —
    /// Fig. 12's y-axis. `None` before any traffic.
    pub fn drop_permille(&self) -> Option<f64> {
        let total = self.allowed + self.dropped;
        if total == 0 {
            return None;
        }
        Some(self.dropped as f64 * 1000.0 / total as f64)
    }

    /// Installed matrix version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Clears rules and counters (edge reboot).
    pub fn clear(&mut self) {
        self.rules.clear();
        self.version = 0;
        self.allowed = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::GroupRule;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    fn subset(version: u64, rules: &[(u32, u16, u16, Action)]) -> RuleSubset {
        RuleSubset {
            version,
            rules: rules
                .iter()
                .map(|(v, s, d, a)| {
                    (
                        vn(*v),
                        GroupRule {
                            src: GroupId(*s),
                            dst: GroupId(*d),
                            action: *a,
                        },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn enforce_counts_and_respects_rules() {
        let mut acl = GroupAcl::new();
        acl.install(&subset(
            1,
            &[(1, 1, 2, Action::Allow), (1, 3, 2, Action::Deny)],
        ));
        assert_eq!(
            acl.enforce(vn(1), GroupId(1), GroupId(2), Action::Deny),
            Action::Allow
        );
        assert_eq!(
            acl.enforce(vn(1), GroupId(3), GroupId(2), Action::Deny),
            Action::Deny
        );
        // Unmatched → default.
        assert_eq!(
            acl.enforce(vn(1), GroupId(9), GroupId(2), Action::Deny),
            Action::Deny
        );
        assert_eq!(acl.counters(), (1, 2));
        let pm = acl.drop_permille().unwrap();
        assert!((pm - 666.66).abs() < 1.0);
    }

    #[test]
    fn default_allow_matrix_supported() {
        let mut acl = GroupAcl::new();
        assert_eq!(
            acl.enforce(vn(1), GroupId(1), GroupId(1), Action::Allow),
            Action::Allow
        );
    }

    #[test]
    fn install_merges_replace_replaces() {
        let mut acl = GroupAcl::new();
        acl.install(&subset(1, &[(1, 1, 2, Action::Allow)]));
        acl.install(&subset(2, &[(1, 3, 2, Action::Deny)]));
        assert_eq!(acl.len(), 2);
        assert_eq!(acl.version(), 2);
        acl.replace(&subset(3, &[(1, 5, 5, Action::Allow)]));
        assert_eq!(acl.len(), 1);
        assert_eq!(
            acl.check(vn(1), GroupId(1), GroupId(2), Action::Deny),
            Action::Deny
        );
    }

    #[test]
    fn install_matrix_copies_every_cell() {
        let mut m = ConnectivityMatrix::new();
        m.allow_bidir(vn(1), GroupId(1), GroupId(2));
        m.set_rule(vn(2), GroupId(3), GroupId(4), Action::Deny);
        let mut acl = GroupAcl::new();
        acl.install_matrix(&m);
        assert_eq!(acl.len(), 3);
        assert_eq!(
            acl.check(vn(1), GroupId(2), GroupId(1), Action::Deny),
            Action::Allow
        );
        assert_eq!(
            acl.check(vn(2), GroupId(3), GroupId(4), Action::Allow),
            Action::Deny
        );
        assert_eq!(acl.version(), m.version());
    }

    #[test]
    fn drop_permille_none_without_traffic() {
        let acl = GroupAcl::new();
        assert!(acl.drop_permille().is_none());
    }

    #[test]
    fn clear_resets_all() {
        let mut acl = GroupAcl::new();
        acl.install(&subset(5, &[(1, 1, 2, Action::Allow)]));
        acl.enforce(vn(1), GroupId(1), GroupId(2), Action::Deny);
        acl.clear();
        assert!(acl.is_empty());
        assert_eq!(acl.counters(), (0, 0));
        assert_eq!(acl.version(), 0);
    }
}
