//! The per-VN group connectivity matrix.
//!
//! Operators express intent as `(source group, destination group) →
//! allow/deny` inside a VN (Fig. 1's "Per-VN connectivity matrix").
//! Cross-VN traffic is impossible by construction — the matrix cannot
//! even express it — which is the paper's "macro" isolation.

use std::collections::BTreeMap;

use sda_types::{GroupId, VnId};

/// The verdict of a rule or lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Permit the traffic.
    Allow,
    /// Drop the traffic.
    Deny,
}

/// One connectivity-matrix cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GroupRule {
    /// Source group of the packet (carried in VXLAN-GPO).
    pub src: GroupId,
    /// Destination group (looked up in the egress VRF).
    pub dst: GroupId,
    /// Verdict for this pair.
    pub action: Action,
}

/// The connectivity matrices of every VN.
#[derive(Clone, Debug)]
pub struct ConnectivityMatrix {
    /// Explicit cells, per VN.
    rules: BTreeMap<VnId, BTreeMap<(GroupId, GroupId), Action>>,
    /// Verdict when no cell matches. Enterprise default: deny.
    default_action: Action,
    /// Bumped on every mutation; lets caches detect staleness.
    version: u64,
    /// Total explicit cells across VNs, maintained incrementally so
    /// [`ConnectivityMatrix::len`] is O(1) (the MapCache/MappingDb
    /// counter discipline). [`ConnectivityMatrix::recount`] checks the
    /// invariant.
    cells: usize,
}

impl Default for ConnectivityMatrix {
    fn default() -> Self {
        ConnectivityMatrix {
            rules: BTreeMap::new(),
            default_action: Action::Deny,
            version: 0,
            cells: 0,
        }
    }
}

impl ConnectivityMatrix {
    /// An empty deny-by-default matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty matrix with an explicit default action.
    pub fn with_default(default_action: Action) -> Self {
        ConnectivityMatrix {
            default_action,
            ..Self::default()
        }
    }

    /// The default action for unmatched pairs.
    pub fn default_action(&self) -> Action {
        self.default_action
    }

    /// Sets the cell `(src → dst)` in `vn`. Overwrites silently (the
    /// operator UI is declarative).
    pub fn set_rule(&mut self, vn: VnId, src: GroupId, dst: GroupId, action: Action) {
        if self
            .rules
            .entry(vn)
            .or_default()
            .insert((src, dst), action)
            .is_none()
        {
            self.cells += 1;
        }
        self.version += 1;
    }

    /// Convenience: allow both directions between `a` and `b` in `vn`.
    pub fn allow_bidir(&mut self, vn: VnId, a: GroupId, b: GroupId) {
        self.set_rule(vn, a, b, Action::Allow);
        self.set_rule(vn, b, a, Action::Allow);
    }

    /// Removes the cell, returning its previous action.
    pub fn clear_rule(&mut self, vn: VnId, src: GroupId, dst: GroupId) -> Option<Action> {
        let removed = self.rules.get_mut(&vn)?.remove(&(src, dst));
        if removed.is_some() {
            self.cells -= 1;
            self.version += 1;
        }
        removed
    }

    /// The verdict for traffic `src → dst` within `vn`.
    pub fn check(&self, vn: VnId, src: GroupId, dst: GroupId) -> Action {
        self.rules
            .get(&vn)
            .and_then(|m| m.get(&(src, dst)))
            .copied()
            .unwrap_or(self.default_action)
    }

    /// All explicit rules of `vn`, ascending by (src, dst).
    pub fn rules_of(&self, vn: VnId) -> impl Iterator<Item = GroupRule> + '_ {
        self.rules.get(&vn).into_iter().flat_map(|m| {
            m.iter().map(|((s, d), a)| GroupRule {
                src: *s,
                dst: *d,
                action: *a,
            })
        })
    }

    /// Explicit rules of `vn` whose destination is in `dst_groups` —
    /// the egress-enforcement subset an edge router downloads (§3.3.1:
    /// "it downloads the rules where the endpoint's group is the
    /// destination"). `dst_groups` must be sorted ascending: the filter
    /// binary-searches it per rule, so a large edge's subset costs
    /// O(rules · log(local groups)) instead of the quadratic scan an
    /// SXP storm used to pay.
    pub fn rules_toward<'a>(
        &'a self,
        vn: VnId,
        dst_groups: &'a [GroupId],
    ) -> impl Iterator<Item = GroupRule> + 'a {
        debug_assert!(
            dst_groups.windows(2).all(|w| w[0] <= w[1]),
            "rules_toward requires a sorted dst_groups slice"
        );
        self.rules_of(vn)
            .filter(move |r| dst_groups.binary_search(&r.dst).is_ok())
    }

    /// Total number of explicit cells across VNs — O(1), maintained by
    /// `set_rule`/`clear_rule`.
    pub fn len(&self) -> usize {
        self.cells
    }

    /// Recomputes the cell count from the maps and checks it against
    /// the incremental counter (debug/diagnostic invariant — the same
    /// discipline as the trie tables' `recount`).
    pub fn recount(&self) -> usize {
        let counted: usize = self.rules.values().map(BTreeMap::len).sum();
        debug_assert_eq!(counted, self.cells, "cell counter diverged from maps");
        counted
    }

    /// True when no explicit cells exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Monotonic mutation counter.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// VNs with at least one explicit rule, ascending.
    pub fn vns(&self) -> impl Iterator<Item = VnId> + '_ {
        self.rules.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    #[test]
    fn default_deny() {
        let m = ConnectivityMatrix::new();
        assert_eq!(m.check(vn(1), GroupId(1), GroupId(2)), Action::Deny);
        assert_eq!(m.default_action(), Action::Deny);
    }

    #[test]
    fn explicit_rule_overrides_default() {
        let mut m = ConnectivityMatrix::new();
        m.set_rule(vn(1), GroupId(1), GroupId(2), Action::Allow);
        assert_eq!(m.check(vn(1), GroupId(1), GroupId(2)), Action::Allow);
        // Directionality matters.
        assert_eq!(m.check(vn(1), GroupId(2), GroupId(1)), Action::Deny);
        // Other VNs unaffected: macro isolation.
        assert_eq!(m.check(vn(2), GroupId(1), GroupId(2)), Action::Deny);
    }

    #[test]
    fn allow_bidir_sets_both_cells() {
        let mut m = ConnectivityMatrix::new();
        m.allow_bidir(vn(1), GroupId(1), GroupId(2));
        assert_eq!(m.check(vn(1), GroupId(1), GroupId(2)), Action::Allow);
        assert_eq!(m.check(vn(1), GroupId(2), GroupId(1)), Action::Allow);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn clear_rule_restores_default() {
        let mut m = ConnectivityMatrix::with_default(Action::Allow);
        m.set_rule(vn(1), GroupId(1), GroupId(2), Action::Deny);
        assert_eq!(m.check(vn(1), GroupId(1), GroupId(2)), Action::Deny);
        assert_eq!(
            m.clear_rule(vn(1), GroupId(1), GroupId(2)),
            Some(Action::Deny)
        );
        assert_eq!(m.check(vn(1), GroupId(1), GroupId(2)), Action::Allow);
        assert_eq!(m.clear_rule(vn(1), GroupId(1), GroupId(2)), None);
    }

    #[test]
    fn version_bumps_on_mutation_only() {
        let mut m = ConnectivityMatrix::new();
        let v0 = m.version();
        m.check(vn(1), GroupId(1), GroupId(1));
        assert_eq!(m.version(), v0);
        m.set_rule(vn(1), GroupId(1), GroupId(1), Action::Allow);
        assert_eq!(m.version(), v0 + 1);
        m.clear_rule(vn(1), GroupId(9), GroupId(9)); // no-op clear
        assert_eq!(m.version(), v0 + 1);
    }

    #[test]
    fn rules_toward_filters_by_destination() {
        let mut m = ConnectivityMatrix::new();
        m.set_rule(vn(1), GroupId(1), GroupId(10), Action::Allow);
        m.set_rule(vn(1), GroupId(2), GroupId(10), Action::Deny);
        m.set_rule(vn(1), GroupId(1), GroupId(20), Action::Allow);
        let local = [GroupId(10)];
        let subset: Vec<GroupRule> = m.rules_toward(vn(1), &local).collect();
        assert_eq!(subset.len(), 2);
        assert!(subset.iter().all(|r| r.dst == GroupId(10)));
    }

    #[test]
    fn len_counter_tracks_inserts_overwrites_and_clears() {
        let mut m = ConnectivityMatrix::new();
        assert_eq!(m.len(), 0);
        m.set_rule(vn(1), GroupId(1), GroupId(2), Action::Allow);
        m.set_rule(vn(2), GroupId(1), GroupId(2), Action::Allow);
        assert_eq!(m.len(), 2);
        // Overwriting an existing cell must not inflate the counter.
        m.set_rule(vn(1), GroupId(1), GroupId(2), Action::Deny);
        assert_eq!(m.len(), 2);
        assert_eq!(m.recount(), 2);
        m.clear_rule(vn(1), GroupId(1), GroupId(2));
        assert_eq!(m.len(), 1);
        // No-op clear leaves the counter alone.
        m.clear_rule(vn(1), GroupId(1), GroupId(2));
        assert_eq!(m.len(), 1);
        assert_eq!(m.recount(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn rules_toward_binary_searches_sorted_locals() {
        let mut m = ConnectivityMatrix::new();
        for d in [5u16, 10, 20, 40] {
            m.set_rule(vn(1), GroupId(1), GroupId(d), Action::Allow);
        }
        let local = [GroupId(5), GroupId(20), GroupId(40)];
        let subset: Vec<GroupRule> = m.rules_toward(vn(1), &local).collect();
        assert_eq!(subset.len(), 3);
        assert!(subset.iter().all(|r| local.binary_search(&r.dst).is_ok()));
    }

    #[test]
    fn vns_lists_only_configured() {
        let mut m = ConnectivityMatrix::new();
        m.set_rule(vn(3), GroupId(1), GroupId(1), Action::Allow);
        m.set_rule(vn(1), GroupId(1), GroupId(1), Action::Allow);
        assert_eq!(m.vns().collect::<Vec<_>>(), vec![vn(1), vn(3)]);
    }
}
