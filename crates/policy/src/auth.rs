//! RADIUS-style endpoint authentication.
//!
//! The paper supports "different RADIUS-based authentication protocols,
//! both with EAP or without" (§3.2.1). What the rest of the system needs
//! from AAA is narrow: a credential check that, on success, yields the
//! endpoint's `(VN, GroupId)` binding and counts the message round-trips
//! (onboarding latency includes them). We model exactly that: a
//! credential store keyed by endpoint identity with per-method round-trip
//! counts (PAP = 1 exchange, EAP-TLS-ish = 3).

use std::collections::HashMap;

use sda_types::{GroupId, MacAddr, VnId};

/// An endpoint credential, presented during onboarding.
///
/// Identity is the endpoint MAC (dot1x/MAB style); the secret stands in
/// for whatever the concrete RADIUS method would verify.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Credential {
    /// The claiming endpoint's MAC address.
    pub identity: MacAddr,
    /// Shared secret / certificate fingerprint stand-in.
    pub secret: u64,
}

/// The authentication method, which determines round-trip count.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AuthMethod {
    /// Single request/response exchange (PAP / MAB).
    #[default]
    Simple,
    /// EAP-style multi-exchange (identity, challenge, result).
    Eap,
}

impl AuthMethod {
    /// Number of request/response round trips to the policy server.
    pub const fn round_trips(self) -> u32 {
        match self {
            AuthMethod::Simple => 1,
            AuthMethod::Eap => 3,
        }
    }
}

/// Result of an authentication attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuthOutcome {
    /// Accepted: the endpoint's segmentation binding.
    Accept {
        /// Virtual network the endpoint belongs to.
        vn: VnId,
        /// Micro-segmentation group.
        group: GroupId,
    },
    /// Rejected: unknown identity or bad secret.
    Reject,
}

struct Enrollment {
    secret: u64,
    vn: VnId,
    group: GroupId,
    method: AuthMethod,
}

/// The credential store plus verification logic.
#[derive(Default)]
pub struct AuthServer {
    enrolled: HashMap<MacAddr, Enrollment>,
    accepts: u64,
    rejects: u64,
}

impl AuthServer {
    /// Creates an empty store.
    pub fn new() -> Self {
        AuthServer::default()
    }

    /// Enrolls (or re-enrolls) an endpoint with its secret and binding.
    pub fn enroll(
        &mut self,
        identity: MacAddr,
        secret: u64,
        vn: VnId,
        group: GroupId,
        method: AuthMethod,
    ) {
        self.enrolled.insert(
            identity,
            Enrollment {
                secret,
                vn,
                group,
                method,
            },
        );
    }

    /// Removes an endpoint entirely (offboarding).
    pub fn revoke(&mut self, identity: MacAddr) -> bool {
        self.enrolled.remove(&identity).is_some()
    }

    /// Moves an enrolled endpoint to a different group (the §5.4
    /// "change the endpoint's group" update primitive). Returns the old
    /// group if the endpoint exists.
    pub fn reassign_group(&mut self, identity: MacAddr, group: GroupId) -> Option<GroupId> {
        let e = self.enrolled.get_mut(&identity)?;
        Some(core::mem::replace(&mut e.group, group))
    }

    /// Verifies a credential.
    pub fn authenticate(&mut self, cred: &Credential) -> AuthOutcome {
        match self.enrolled.get(&cred.identity) {
            Some(e) if e.secret == cred.secret => {
                self.accepts += 1;
                AuthOutcome::Accept {
                    vn: e.vn,
                    group: e.group,
                }
            }
            _ => {
                self.rejects += 1;
                AuthOutcome::Reject
            }
        }
    }

    /// The configured method for an identity (Simple when unknown).
    pub fn method_of(&self, identity: MacAddr) -> AuthMethod {
        self.enrolled
            .get(&identity)
            .map(|e| e.method)
            .unwrap_or_default()
    }

    /// The binding an identity would receive, without authenticating.
    /// Used by re-authentication flows where the secret was already
    /// verified this session.
    pub fn binding_of(&self, identity: MacAddr) -> Option<(VnId, GroupId)> {
        self.enrolled.get(&identity).map(|e| (e.vn, e.group))
    }

    /// (accepted, rejected) attempt counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.accepts, self.rejects)
    }

    /// Number of enrolled endpoints.
    pub fn len(&self) -> usize {
        self.enrolled.len()
    }

    /// True when no endpoints are enrolled.
    pub fn is_empty(&self) -> bool {
        self.enrolled.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    #[test]
    fn accept_with_correct_secret() {
        let mut s = AuthServer::new();
        let mac = MacAddr::from_seed(1);
        s.enroll(mac, 42, vn(10), GroupId(5), AuthMethod::Simple);
        let out = s.authenticate(&Credential {
            identity: mac,
            secret: 42,
        });
        assert_eq!(
            out,
            AuthOutcome::Accept {
                vn: vn(10),
                group: GroupId(5)
            }
        );
        assert_eq!(s.stats(), (1, 0));
    }

    #[test]
    fn reject_wrong_secret_and_unknown() {
        let mut s = AuthServer::new();
        let mac = MacAddr::from_seed(1);
        s.enroll(mac, 42, vn(10), GroupId(5), AuthMethod::Simple);
        assert_eq!(
            s.authenticate(&Credential {
                identity: mac,
                secret: 41
            }),
            AuthOutcome::Reject
        );
        assert_eq!(
            s.authenticate(&Credential {
                identity: MacAddr::from_seed(2),
                secret: 42
            }),
            AuthOutcome::Reject
        );
        assert_eq!(s.stats(), (0, 2));
    }

    #[test]
    fn reassign_group_changes_future_accepts() {
        let mut s = AuthServer::new();
        let mac = MacAddr::from_seed(3);
        s.enroll(mac, 7, vn(1), GroupId(10), AuthMethod::Eap);
        assert_eq!(s.reassign_group(mac, GroupId(20)), Some(GroupId(10)));
        let out = s.authenticate(&Credential {
            identity: mac,
            secret: 7,
        });
        assert_eq!(
            out,
            AuthOutcome::Accept {
                vn: vn(1),
                group: GroupId(20)
            }
        );
        assert_eq!(s.reassign_group(MacAddr::from_seed(9), GroupId(1)), None);
    }

    #[test]
    fn revoke_then_reject() {
        let mut s = AuthServer::new();
        let mac = MacAddr::from_seed(4);
        s.enroll(mac, 1, vn(1), GroupId(1), AuthMethod::Simple);
        assert!(s.revoke(mac));
        assert!(!s.revoke(mac));
        assert_eq!(
            s.authenticate(&Credential {
                identity: mac,
                secret: 1
            }),
            AuthOutcome::Reject
        );
    }

    #[test]
    fn method_round_trips() {
        assert_eq!(AuthMethod::Simple.round_trips(), 1);
        assert_eq!(AuthMethod::Eap.round_trips(), 3);
        let mut s = AuthServer::new();
        let mac = MacAddr::from_seed(5);
        s.enroll(mac, 1, vn(1), GroupId(1), AuthMethod::Eap);
        assert_eq!(s.method_of(mac), AuthMethod::Eap);
        assert_eq!(s.method_of(MacAddr::from_seed(6)), AuthMethod::Simple);
    }

    #[test]
    fn binding_without_auth() {
        let mut s = AuthServer::new();
        let mac = MacAddr::from_seed(8);
        s.enroll(mac, 1, vn(2), GroupId(3), AuthMethod::Simple);
        assert_eq!(s.binding_of(mac), Some((vn(2), GroupId(3))));
        assert_eq!(s.binding_of(MacAddr::from_seed(9)), None);
        assert_eq!(s.stats(), (0, 0), "binding_of must not count as auth");
    }
}
