//! The control-plane differential oracle: generated
//! register/request/move/expiry/subscribe interleavings are replayed
//! through **both** implementations — a single `sda_lisp::MapServer`
//! and the 4-shard `PartitionedMapServer` — and the observable behavior
//! must agree (the same discipline as `sda-core`'s data-plane
//! `differential_oracle.rs`):
//!
//! * **Reply-for-reply / notify-for-notify**: each handled message's
//!   outbox, publishes set aside, must match exactly (destinations,
//!   nonces, prefixes, TTLs, negatives, move-notify targets).
//! * **Subscriber views converge**: applying the single server's
//!   publishes and the partitioned server's flushed delta/snapshot
//!   publishes must leave every subscriber with the same `(vn, eid) →
//!   rloc` view — and with the partitioned server's per-VN delta
//!   streams contiguous (no silent gaps at the default queue bound).
//! * **Databases agree** after every expiry sweep (which runs the
//!   *parallel* path on the partitioned side).
//!
//! The gap → snapshot-resync path (bounded queues overflowing) is
//! deterministic, not generated: `gap_resync_restores_consistency`
//! forces an overflow through a capacity-4 queue and asserts the resync
//! snapshot restores the exact view.

use std::collections::BTreeMap;

use proptest::prelude::*;
use sda_ctrl::PartitionedMapServer;
use sda_lisp::MapServer;
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, EidPrefix, Rloc, VnId};
use sda_wire::lisp::Message;
use std::net::Ipv4Addr;

const SHARDS: usize = 4;
const TTL_SECS: u32 = 300;

fn vn(n: u32) -> VnId {
    VnId::new(1 + n % 3).unwrap()
}

/// EIDs spread across /16 blocks so all 4 partitions participate.
fn eid(n: u32) -> Eid {
    Eid::V4(Ipv4Addr::from(0x0A00_0000 | ((n % 61) << 16) | n))
}

fn edge(n: u32) -> Rloc {
    Rloc::for_router_index(1 + (n % 23) as u16)
}

fn border(n: u32) -> Rloc {
    Rloc::for_router_index(900 + (n % 4) as u16)
}

/// One generated control-plane step.
#[derive(Clone, Debug)]
enum Op {
    /// Register (same `e`+different `r` later = move; same `r` =
    /// refresh).
    Register { v: u32, e: u32, r: u32 },
    /// Map-Request from some ITR.
    Request { v: u32, e: u32, itr: u32 },
    /// Border subscription (idempotent; mid-stream re-subscribe forces
    /// a snapshot on the partitioned side).
    Subscribe { v: u32, b: u32 },
    /// Advance the clock and run the expiry sweep on both sides.
    Expire { secs: u32 },
    /// Explicit withdraw.
    Withdraw { v: u32, e: u32 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..3, 0u32..200, 0u32..8).prop_map(|(v, e, r)| Op::Register { v, e, r }),
        (0u32..3, 0u32..200, 0u32..8).prop_map(|(v, e, itr)| Op::Request { v, e, itr }),
        (0u32..3, 0u32..4).prop_map(|(v, b)| Op::Subscribe { v, b }),
        (1u32..200).prop_map(|secs| Op::Expire { secs }),
        (0u32..3, 0u32..200).prop_map(|(v, e)| Op::Withdraw { v, e }),
    ]
}

/// A subscriber's `(vn, eid-prefix) → rloc` view plus per-VN stream
/// positions.
#[derive(Default, Debug, PartialEq, Eq)]
struct View {
    map: BTreeMap<(VnId, EidPrefix), Rloc>,
}

impl View {
    fn apply(&mut self, vn: VnId, prefix: EidPrefix, rloc: Rloc, withdraw: bool) {
        if withdraw {
            self.map.remove(&(vn, prefix));
        } else {
            self.map.insert((vn, prefix), rloc);
        }
    }

    /// Replaces the whole `vn` slice with snapshot content.
    fn replace_vn(&mut self, vn: VnId, content: &[(EidPrefix, Rloc)]) {
        self.map.retain(|(v, _), _| *v != vn);
        for (p, r) in content {
            self.map.insert((vn, *p), *r);
        }
    }
}

/// Applies the single server's publish stream to its subscriber views.
fn apply_single_publishes(views: &mut BTreeMap<Rloc, View>, out: &[(Rloc, Message)]) {
    for (to, m) in out {
        if let Message::Publish {
            vn,
            prefix,
            rloc,
            withdraw,
            ..
        } = m
        {
            views
                .entry(*to)
                .or_default()
                .apply(*vn, *prefix, *rloc, *withdraw);
        }
    }
}

/// Applies one partitioned-server flush to its subscriber views.
///
/// The driver knows which `(subscriber, vn)` streams expect a snapshot
/// (set on every Subscribe op), so snapshot groups are applied as
/// replacement and everything else as deltas — asserting delta
/// contiguity per VN along the way.
fn apply_flush(
    views: &mut BTreeMap<Rloc, View>,
    seqs: &mut BTreeMap<(Rloc, VnId), u64>,
    pending_snapshot: &mut std::collections::BTreeSet<(Rloc, VnId)>,
    out: &[(Rloc, Message)],
) {
    // Group snapshot content per (subscriber, vn) first.
    let mut snapshots: BTreeMap<(Rloc, VnId), Vec<(EidPrefix, Rloc)>> = BTreeMap::new();
    let mut watermarks: BTreeMap<(Rloc, VnId), u64> = BTreeMap::new();
    for (to, m) in out {
        let Message::Publish {
            nonce,
            vn,
            prefix,
            rloc,
            withdraw,
        } = m
        else {
            panic!("flush must only emit publishes, got {m:?}");
        };
        let key = (*to, *vn);
        if pending_snapshot.contains(&key) {
            assert!(!withdraw, "snapshots carry state, not withdrawals");
            snapshots.entry(key).or_default().push((*prefix, *rloc));
            watermarks.insert(key, *nonce);
        } else {
            let last = seqs.entry(key).or_insert(0);
            assert_eq!(
                *nonce,
                *last + 1,
                "delta stream of {key:?} must be contiguous"
            );
            *last = *nonce;
            views
                .entry(*to)
                .or_default()
                .apply(*vn, *prefix, *rloc, *withdraw);
        }
    }
    // Snapshot groups replace the VN slice and reset the stream cursor
    // to the watermark. (An empty-world snapshot emits nothing — the
    // driver syncs those cursors from `pubsub_seq` afterwards.)
    for (key, content) in &snapshots {
        views.entry(key.0).or_default().replace_vn(key.1, content);
        seqs.insert(*key, watermarks[key]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partitioned_matches_single_server(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let rloc = Rloc::for_router_index(1000);
        let mut single = MapServer::new(rloc);
        let mut part = PartitionedMapServer::new(rloc, SHARDS);

        let mut now = SimTime::ZERO;
        let mut single_views: BTreeMap<Rloc, View> = BTreeMap::new();
        let mut part_views: BTreeMap<Rloc, View> = BTreeMap::new();
        let mut part_seqs: BTreeMap<(Rloc, VnId), u64> = BTreeMap::new();
        let mut pending: std::collections::BTreeSet<(Rloc, VnId)> = std::collections::BTreeSet::new();
        let mut nonce = 0u64;

        for op in &ops {
            let msg = match *op {
                Op::Register { v, e, r } => {
                    nonce += 1;
                    Some(Message::MapRegister {
                        nonce,
                        vn: vn(v),
                        eid: eid(e),
                        rloc: edge(r),
                        ttl_secs: TTL_SECS,
                        // Exercise the ack path too.
                        want_notify: e % 5 == 0,
                    })
                }
                Op::Request { v, e, itr } => {
                    nonce += 1;
                    Some(Message::MapRequest {
                        nonce,
                        smr: false,
                        vn: vn(v),
                        eid: eid(e),
                        itr_rloc: edge(itr),
                    })
                }
                Op::Subscribe { v, b } => Some(Message::Subscribe {
                    nonce: 0,
                    vn: vn(v),
                    subscriber: border(b),
                }),
                Op::Expire { .. } | Op::Withdraw { .. } => None,
            };

            match (op, msg) {
                (_, Some(msg)) => {
                    if let Message::Subscribe { vn, subscriber, .. } = &msg {
                        pending.insert((*subscriber, *vn));
                    }
                    let out_single = single.handle(msg.clone(), now);
                    let out_part = part.handle(msg, now);

                    // Reply-for-reply, notify-for-notify: everything the
                    // single server transmits except publishes must
                    // match exactly, in order.
                    let non_pub: Vec<&(Rloc, Message)> = out_single
                        .iter()
                        .filter(|(_, m)| !matches!(m, Message::Publish { .. }))
                        .collect();
                    prop_assert_eq!(
                        non_pub.len(),
                        out_part.len(),
                        "reply/notify count diverged"
                    );
                    for (a, b) in non_pub.iter().zip(out_part.iter()) {
                        prop_assert_eq!(*a, b);
                    }

                    apply_single_publishes(&mut single_views, &out_single);
                    let flushed = part.flush_publishes();
                    apply_flush(&mut part_views, &mut part_seqs, &mut pending, &flushed);
                    // An empty-world snapshot emits nothing, so sync
                    // every just-resynced cursor to the VN watermark.
                    for key in &pending {
                        part_seqs.insert(*key, part.pubsub_seq(key.1));
                    }
                    pending.clear();
                }
                (Op::Expire { secs }, None) => {
                    now += SimDuration::from_secs(u64::from(*secs));
                    let out_single = single.expire(now);
                    part.expire(now); // the parallel path
                    apply_single_publishes(&mut single_views, &out_single);
                    let flushed = part.flush_publishes();
                    apply_flush(&mut part_views, &mut part_seqs, &mut pending, &flushed);
                    for key in &pending {
                        part_seqs.insert(*key, part.pubsub_seq(key.1));
                    }
                    pending.clear();
                }
                (Op::Withdraw { v, e }, None) => {
                    let out_single = single.withdraw(vn(*v), eid(*e));
                    part.withdraw(vn(*v), eid(*e));
                    apply_single_publishes(&mut single_views, &out_single);
                    let flushed = part.flush_publishes();
                    apply_flush(&mut part_views, &mut part_seqs, &mut pending, &flushed);
                    for key in &pending {
                        part_seqs.insert(*key, part.pubsub_seq(key.1));
                    }
                    pending.clear();
                }
                _ => unreachable!(),
            }

            prop_assert_eq!(single.db().len(), part.db_len(), "database sizes diverged");
        }

        // No silent gaps at the default queue bound: the per-VN cursor
        // checks above already guarantee it, but make the claim explicit.
        prop_assert_eq!(part.pubsub_gaps(), 0);

        // Final registered state agrees entry-for-entry (live records
        // only — both sides may still hold unswept expired entries).
        let mut single_entries: Vec<(VnId, EidPrefix, Rloc)> = single
            .db()
            .iter()
            .filter(|(_, _, r)| !r.expired(now))
            .map(|(v, p, r)| (v, p, r.rloc))
            .collect();
        let mut part_entries: Vec<(VnId, EidPrefix, Rloc)> = Vec::new();
        for v in 0..3 {
            for (p, r) in part_lookup_all(&part, vn(v), now) {
                part_entries.push((vn(v), p, r));
            }
        }
        single_entries.sort();
        part_entries.sort();
        prop_assert_eq!(single_entries, part_entries);

        // Subscriber views converge. (Views the single server never
        // published to stay empty on both sides.)
        for (sub, view) in &single_views {
            let empty = View::default();
            let got = part_views.get(sub).unwrap_or(&empty);
            prop_assert_eq!(&view.map, &got.map, "subscriber {:?} view diverged", sub);
        }

        // Counters: replies and moves are observable behavior too.
        let s = single.stats();
        let p = part.stats();
        prop_assert_eq!(s.replies, p.replies);
        prop_assert_eq!(s.negative_replies, p.negative_replies);
        prop_assert_eq!(s.registers, p.registers);
        prop_assert_eq!(s.moves, p.moves);
    }
}

/// Every (prefix, rloc) the partitioned server would answer for `v` —
/// reconstructed through the public lookup API so the test exercises
/// owner routing rather than trusting internal iteration.
fn part_lookup_all(part: &PartitionedMapServer, v: VnId, now: SimTime) -> Vec<(EidPrefix, Rloc)> {
    let mut out = Vec::new();
    for e in 0..200 {
        if let Some((p, rec)) = part.lookup(v, eid(e), now) {
            out.push((p, rec.rloc));
        }
    }
    out
}

/// The gap → resync path, deterministically: a capacity-4 queue
/// overflows under a burst of changes, and the snapshot resync must
/// restore the subscriber to the exact authoritative view — including
/// a withdrawal that happened inside the dropped window.
#[test]
fn gap_resync_restores_consistency() {
    let rloc = Rloc::for_router_index(1000);
    let mut part = PartitionedMapServer::with_queue_capacity(rloc, SHARDS, 4);
    let b = border(0);
    let v = vn(0);
    let now = SimTime::ZERO;

    part.handle(
        Message::Subscribe {
            nonce: 0,
            vn: v,
            subscriber: b,
        },
        now,
    );
    part.flush_publishes(); // empty snapshot, stream live

    // Burst: 8 registrations + 1 withdrawal without a flush. Capacity 4
    // forces an overflow -> gap -> pending snapshot.
    for e in 0..8 {
        part.handle(
            Message::MapRegister {
                nonce: 1,
                vn: v,
                eid: eid(e),
                rloc: edge(e),
                ttl_secs: TTL_SECS,
                want_notify: false,
            },
            now,
        );
    }
    part.withdraw(v, eid(3));
    assert!(part.pubsub_gaps() >= 1, "burst must overflow the queue");

    // The resync snapshot carries the full current state...
    let out = part.flush_publishes();
    let mut view = View::default();
    let content: Vec<(EidPrefix, Rloc)> = out
        .iter()
        .map(|(to, m)| {
            assert_eq!(*to, b);
            match m {
                Message::Publish {
                    prefix,
                    rloc,
                    withdraw: false,
                    ..
                } => (*prefix, *rloc),
                other => panic!("resync must be a snapshot, got {other:?}"),
            }
        })
        .collect();
    view.replace_vn(v, &content);

    // ...and it equals the authoritative database: 7 live entries, the
    // withdrawn one absent even though its withdrawal delta was lost.
    assert_eq!(view.map.len(), 7);
    assert!(!view.map.contains_key(&(v, EidPrefix::host(eid(3)))));
    for e in 0..8 {
        if e == 3 {
            continue;
        }
        assert_eq!(view.map.get(&(v, EidPrefix::host(eid(e)))), Some(&edge(e)));
    }

    // Stream is live again: the next change arrives as a lone delta.
    part.handle(
        Message::MapRegister {
            nonce: 2,
            vn: v,
            eid: eid(100),
            rloc: edge(1),
            ttl_secs: TTL_SECS,
            want_notify: false,
        },
        now,
    );
    let out = part.flush_publishes();
    assert_eq!(out.len(), 1);
    assert!(matches!(
        out[0].1,
        Message::Publish {
            withdraw: false,
            ..
        }
    ));
}
