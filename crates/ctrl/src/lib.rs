//! # sda-ctrl
//!
//! The **partitioned control plane**: the scale-tier successor to
//! `sda-lisp`'s single [`MapServer`](sda_lisp::MapServer) and to the
//! paper-faithful replicate-all [`ShardedMapServer`]
//! (sda_lisp::ShardedMapServer), which clones every Map-Register into
//! every shard (§4.1: "perform route updates on all servers") and so
//! scales registration cost, memory, and pub/sub fan-out *linearly with
//! shard count*.
//!
//! [`PartitionedMapServer`] instead owns N shards, each with its **own**
//! [`MappingDb`](sda_lisp::MappingDb) trie covering a prefix-aligned
//! partition of EID space:
//!
//! * **Registers land on exactly one owner shard**, routed by the EID's
//!   top [`partition::PARTITION_BITS`] key bits — total state is the
//!   world, not `shards × world`.
//! * **Map-Requests route by EID to the owner** (the owner is the only
//!   shard that can know the answer).
//! * **Expiry sweeps run in parallel** across shards on scoped worker
//!   threads — each shard's trie is an independent `&mut`, so the sweep
//!   is embarrassingly parallel; results aggregate in shard order, so
//!   the outcome is deterministic regardless of thread scheduling (the
//!   same discipline as the multi-core engine's worker-order punt
//!   aggregation in `sda-dataplane`).
//! * **Pub/sub is incremental**: every mapping change enqueues one
//!   [`fanout::Delta`] into per-subscriber bounded queues with per-VN
//!   sequence numbers. Publishing is O(changes × subscribers-of-that-VN)
//!   — never a whole-world re-walk. Queue overflow marks a gap and
//!   triggers a snapshot resync of exactly the affected `(subscriber,
//!   VN)` stream on the next flush.
//!
//! The replicate-all `ShardedMapServer` is kept in `sda-lisp` as the
//! paper-faithful differential oracle; `tests/differential_ctrl.rs`
//! proves the partitioned server agrees with a *single* `MapServer`
//! reply-for-reply and notify-for-notify over generated
//! register/request/move/expiry interleavings.
//!
//! ## Overload hardening
//!
//! * **Admission control** ([`admission`]): per-shard, per-class token
//!   buckets gate requests, registers and subscribes independently.
//!   Over-budget messages are shed with a `ServerBusy` reply carrying a
//!   retry-after hint — never silently dropped — and resync
//!   resubscribes bypass the subscribe budget so self-healing always
//!   wins over churn.
//! * **Shard-scoped faults**: individual shards can crash (state lost)
//!   or partition (state frozen) while the rest of the server keeps
//!   serving; down shards drop their owner-routed traffic and are
//!   excluded from snapshot walks and expiry sweeps. See the overload
//!   model section in [`server`].

pub mod admission;
pub mod fanout;
pub mod partition;
pub mod server;

pub use admission::{AdmissionConfig, ClassBudget};
pub use fanout::{Delta, DeltaFanout, DEFAULT_QUEUE_CAP};
pub use partition::{block_of, owner_of, PARTITION_BITS};
pub use server::{Disposition, OverloadStats, PartitionedMapServer};
