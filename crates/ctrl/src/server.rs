//! The partitioned map-server.
//!
//! One logical routing server whose state is split across N shards by
//! [`crate::partition`]: each shard owns its own
//! [`MappingDb`](sda_lisp::MappingDb) covering a prefix-aligned slice of
//! EID space, so a register costs one shard's work and total memory is
//! the world — not `shards × world` like the replicate-all
//! [`ShardedMapServer`](sda_lisp::ShardedMapServer).
//!
//! [`PartitionedMapServer::handle`] returns replies and notifies only —
//! byte-for-byte what a single [`MapServer`](sda_lisp::MapServer) would
//! transmit. Pub/sub rides the incremental
//! [`DeltaFanout`](crate::fanout::DeltaFanout) instead: changes enqueue
//! deltas, and [`PartitionedMapServer::flush_publishes`] drains them
//! (plus any pending snapshot resyncs). Callers embedding the server in
//! a message loop flush after each handled message; batch loaders flush
//! once at the end.
//!
//! ## Overload model
//!
//! Two protections sit in front of the shards, both off by default:
//!
//! * **Admission control** ([`PartitionedMapServer::set_admission`]):
//!   per-shard, per-class token buckets (requests / registers /
//!   subscribes — see [`crate::admission`]). A message whose bucket is
//!   empty is **shed**: [`PartitionedMapServer::handle_with_disposition`]
//!   returns [`Disposition::Shed`] together with a
//!   [`Message::ServerBusy`] reply carrying the class and a
//!   retry-after hint, so the sender reschedules at the hinted time
//!   instead of its (faster) loss-recovery backoff. Resubscribes of an
//!   already-known `(VN, subscriber)` stream bypass the subscribe
//!   bucket — snapshot resyncs are the self-healing path and must
//!   never lose to churn.
//! * **Shard faults** ([`PartitionedMapServer::crash_shard`] /
//!   [`PartitionedMapServer::partition_shard`]): a down shard answers
//!   nothing — owner-routed requests and registers are dropped with
//!   [`Disposition::ShardDown`] (counted, never replied), its state is
//!   excluded from snapshot walks and expiry sweeps, and the rest of
//!   the server keeps serving. Senders recover through their ordinary
//!   retransmit machinery once the shard restarts or heals.
//!
//! The retry-after contract: a `ServerBusy` reply means "this exact
//! message was dropped unprocessed; do not retransmit it for at least
//! `retry_after_ms`". It never acknowledges anything.

use sda_lisp::map_server::{MapServerStats, Outbox, NEGATIVE_TTL_SECS, REPLY_TTL_SECS};
use sda_lisp::{MappingDb, RegisterOutcome};
use sda_simnet::{SimDuration, SimTime};
use sda_trie::MemStats;
use sda_types::{Eid, EidPrefix, Rloc, VnId};
use sda_wire::lisp::{BusyClass, Message};

use crate::admission::{AdmissionConfig, TokenBucket};
use crate::fanout::{DeltaFanout, DEFAULT_QUEUE_CAP};
use crate::partition;

/// How [`PartitionedMapServer::handle_with_disposition`] disposed of a
/// message — drives differentiated CPU accounting (shedding is cheap)
/// and overload observability in embedding nodes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Disposition {
    /// Processed normally (including messages a server ignores).
    Served,
    /// Admission bucket empty: dropped unprocessed, a
    /// [`Message::ServerBusy`] reply is in the outbox.
    Shed,
    /// The owner shard is crashed or partitioned: dropped silently
    /// (the shard cannot answer, busy or otherwise).
    ShardDown,
}

/// Overload counters: messages shed per class plus drops at down shards.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct OverloadStats {
    /// Map-Requests shed by admission control.
    pub shed_requests: u64,
    /// Map-Registers shed by admission control.
    pub shed_registers: u64,
    /// Subscribes shed by admission control.
    pub shed_subscribes: u64,
    /// Messages dropped because their owner shard was down.
    pub shard_drops: u64,
}

impl OverloadStats {
    /// Total messages shed with a `ServerBusy` reply.
    pub fn shed_total(&self) -> u64 {
        self.shed_requests + self.shed_registers + self.shed_subscribes
    }
}

/// Admission buckets of one shard (present only when admission is on).
#[derive(Clone, Copy, Debug)]
struct ShardGates {
    requests: TokenBucket,
    registers: TokenBucket,
}

/// One partition: its slice of the mapping database plus counters.
struct Shard {
    db: MappingDb,
    /// Crashed or partitioned away: serves nothing until restart/heal.
    down: bool,
    replies: u64,
    negative_replies: u64,
    registers: u64,
    moves: u64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            db: MappingDb::new(),
            down: false,
            replies: 0,
            negative_replies: 0,
            registers: 0,
            moves: 0,
        }
    }

    /// One expiry sweep over this shard: prunes expired host
    /// registrations in a single traversal, returning what was removed
    /// (for the withdraw publishes). Runs on a worker thread when the
    /// parent sweeps in parallel — it only touches this shard's `&mut`.
    fn sweep(&mut self, now: SimTime) -> Vec<(VnId, Eid, Rloc)> {
        // A down shard's state is frozen: nothing expires (and nothing
        // could publish the withdrawals anyway) until restart/heal.
        if self.down {
            return Vec::new();
        }
        let mut dead = Vec::new();
        self.db.retain(|vn, prefix, rec| {
            if !rec.expired(now) {
                return true;
            }
            match host_eid_of(prefix) {
                Some(eid) => {
                    dead.push((vn, eid, rec.rloc));
                    false
                }
                // Non-host registrations are out of scope for expiry
                // withdrawal (parity with `MapServer::expire`).
                None => true,
            }
        });
        dead
    }
}

/// The EID-partitioned routing server.
pub struct PartitionedMapServer {
    rloc: Rloc,
    shards: Vec<Shard>,
    fanout: DeltaFanout,
    default_ttl: SimDuration,
    /// Admission policy; `None` = every message admitted (no gating
    /// work on the hot path at all).
    admission: Option<AdmissionConfig>,
    /// Per-shard request/register buckets (empty when admission off).
    gates: Vec<ShardGates>,
    /// Server-wide subscribe bucket (subscriptions are not sharded).
    subscribe_gate: Option<TokenBucket>,
    overload: OverloadStats,
}

impl PartitionedMapServer {
    /// A server reachable at `rloc` with `shards` partitions.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(rloc: Rloc, shards: usize) -> Self {
        Self::with_queue_capacity(rloc, shards, DEFAULT_QUEUE_CAP)
    }

    /// As [`PartitionedMapServer::new`] with an explicit per-subscriber
    /// delta queue bound (tests force tiny bounds to exercise the gap →
    /// snapshot resync path).
    pub fn with_queue_capacity(rloc: Rloc, shards: usize, queue_cap: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        PartitionedMapServer {
            rloc,
            shards: (0..shards).map(|_| Shard::new()).collect(),
            fanout: DeltaFanout::new(queue_cap),
            default_ttl: SimDuration::from_secs(u64::from(REPLY_TTL_SECS)),
            admission: None,
            gates: Vec::new(),
            subscribe_gate: None,
            overload: OverloadStats::default(),
        }
    }

    /// Installs (or removes, with `None`) admission control: fresh
    /// full buckets per shard and class. Overload counters are kept.
    pub fn set_admission(&mut self, config: Option<AdmissionConfig>) {
        self.admission = config;
        match config {
            Some(cfg) => {
                self.gates = self
                    .shards
                    .iter()
                    .map(|_| ShardGates {
                        requests: TokenBucket::new(cfg.requests),
                        registers: TokenBucket::new(cfg.registers),
                    })
                    .collect();
                self.subscribe_gate = Some(TokenBucket::new(cfg.subscribes));
            }
            None => {
                self.gates = Vec::new();
                self.subscribe_gate = None;
            }
        }
    }

    /// The installed admission policy, if any.
    pub fn admission(&self) -> Option<AdmissionConfig> {
        self.admission
    }

    /// Overload counters (shed per class, drops at down shards).
    pub fn overload_stats(&self) -> OverloadStats {
        self.overload
    }

    /// Crashes shard `shard`: its volatile slice of the database is
    /// lost and it serves nothing until [`PartitionedMapServer::restart_shard`].
    pub fn crash_shard(&mut self, shard: usize) {
        let s = &mut self.shards[shard];
        s.db = MappingDb::new();
        s.down = true;
    }

    /// Brings a crashed shard back up, empty. Its slice of the world
    /// repopulates through the edges' periodic register refreshes.
    pub fn restart_shard(&mut self, shard: usize) {
        self.shards[shard].down = false;
    }

    /// Partitions shard `shard` away: state intact but serving nothing
    /// until [`PartitionedMapServer::heal_shard`].
    pub fn partition_shard(&mut self, shard: usize) {
        self.shards[shard].down = true;
    }

    /// Reconnects a partitioned shard, state intact.
    pub fn heal_shard(&mut self, shard: usize) {
        self.shards[shard].down = false;
    }

    /// True while `shard` is crashed or partitioned.
    pub fn shard_down(&self, shard: usize) -> bool {
        self.shards[shard].down
    }

    /// This server's locator.
    pub fn rloc(&self) -> Rloc {
        self.rloc
    }

    /// Number of partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Handles one control message, returning the replies/notifies to
    /// transmit — exactly what a single `MapServer` would produce.
    /// Mapping changes additionally enqueue pub/sub deltas; drain them
    /// with [`PartitionedMapServer::flush_publishes`]. Shorthand for
    /// [`PartitionedMapServer::handle_with_disposition`] when the
    /// caller does not differentiate served/shed CPU cost.
    pub fn handle(&mut self, msg: Message, now: SimTime) -> Outbox {
        self.handle_with_disposition(msg, now).1
    }

    /// As [`PartitionedMapServer::handle`], also reporting how the
    /// message was disposed of (served, shed with a `ServerBusy` reply
    /// in the outbox, or dropped at a down shard).
    pub fn handle_with_disposition(&mut self, msg: Message, now: SimTime) -> (Disposition, Outbox) {
        match msg {
            Message::MapRequest {
                nonce,
                smr,
                vn,
                eid,
                itr_rloc,
            } => {
                // An SMR addressed to the server is meaningless; ignore.
                if smr {
                    return (Disposition::Served, Outbox::new());
                }
                let owner = partition::owner_of(&eid, self.shards.len());
                if self.shards[owner].down {
                    self.overload.shard_drops += 1;
                    return (Disposition::ShardDown, Outbox::new());
                }
                if !self.admit_request(owner, now) {
                    self.overload.shed_requests += 1;
                    return (
                        Disposition::Shed,
                        vec![(
                            itr_rloc,
                            self.busy_reply(nonce, vn, eid, BusyClass::Request),
                        )],
                    );
                }
                (
                    Disposition::Served,
                    self.answer_request(nonce, vn, eid, itr_rloc, now),
                )
            }
            Message::MapRegister {
                nonce,
                vn,
                eid,
                rloc,
                ttl_secs,
                want_notify,
            } => {
                let owner = partition::owner_of(&eid, self.shards.len());
                if self.shards[owner].down {
                    self.overload.shard_drops += 1;
                    return (Disposition::ShardDown, Outbox::new());
                }
                if !self.admit_register(owner, now) {
                    self.overload.shed_registers += 1;
                    return (
                        Disposition::Shed,
                        vec![(rloc, self.busy_reply(nonce, vn, eid, BusyClass::Register))],
                    );
                }
                (
                    Disposition::Served,
                    self.process_register(nonce, vn, eid, rloc, ttl_secs, want_notify, now),
                )
            }
            Message::Subscribe {
                nonce,
                vn,
                subscriber,
            } => {
                // Resubscribes of a known stream are resyncs — the
                // self-healing path — and bypass the subscribe budget.
                if !self.fanout.is_subscribed(vn, subscriber) && !self.admit_subscribe(now) {
                    self.overload.shed_subscribes += 1;
                    let eid = Eid::V4(std::net::Ipv4Addr::UNSPECIFIED);
                    return (
                        Disposition::Shed,
                        vec![(
                            subscriber,
                            self.busy_reply(nonce, vn, eid, BusyClass::Subscribe),
                        )],
                    );
                }
                // Snapshot is assembled at the next flush, off the owner
                // shards' live state — not walked here. The ack mirrors
                // the single server's: byte-identical non-publish outbox.
                self.fanout.subscribe(vn, subscriber);
                (
                    Disposition::Served,
                    vec![(subscriber, Message::SubscribeAck { nonce, vn })],
                )
            }
            // Replies/notifies/publishes/acks/busy-signals are never
            // addressed to a server.
            Message::MapReply { .. }
            | Message::MapNotify { .. }
            | Message::Publish { .. }
            | Message::SubscribeAck { .. }
            | Message::ServerBusy { .. } => (Disposition::Served, Outbox::new()),
        }
    }

    fn busy_reply(&self, nonce: u64, vn: VnId, eid: Eid, class: BusyClass) -> Message {
        let retry_after_ms = self
            .admission
            .map(|cfg| cfg.retry_after_ms())
            .unwrap_or(1000);
        Message::ServerBusy {
            nonce,
            vn,
            eid,
            class,
            retry_after_ms,
        }
    }

    fn admit_request(&mut self, shard: usize, now: SimTime) -> bool {
        match self.gates.get_mut(shard) {
            Some(g) => g.requests.try_take(now),
            None => true,
        }
    }

    fn admit_register(&mut self, shard: usize, now: SimTime) -> bool {
        match self.gates.get_mut(shard) {
            Some(g) => g.registers.try_take(now),
            None => true,
        }
    }

    fn admit_subscribe(&mut self, now: SimTime) -> bool {
        match self.subscribe_gate.as_mut() {
            Some(g) => g.try_take(now),
            None => true,
        }
    }

    fn answer_request(
        &mut self,
        nonce: u64,
        vn: VnId,
        eid: Eid,
        itr_rloc: Rloc,
        now: SimTime,
    ) -> Outbox {
        let owner = partition::owner_of(&eid, self.shards.len());
        let shard = &mut self.shards[owner];
        match shard.db.lookup(vn, eid, now) {
            Some((prefix, rec)) => {
                shard.replies += 1;
                vec![(
                    itr_rloc,
                    Message::MapReply {
                        nonce,
                        vn,
                        prefix,
                        rloc: Some(rec.rloc),
                        negative: false,
                        ttl_secs: REPLY_TTL_SECS,
                    },
                )]
            }
            None => {
                shard.negative_replies += 1;
                vec![(
                    itr_rloc,
                    Message::MapReply {
                        nonce,
                        vn,
                        prefix: EidPrefix::host(eid),
                        rloc: None,
                        negative: true,
                        ttl_secs: NEGATIVE_TTL_SECS,
                    },
                )]
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process_register(
        &mut self,
        nonce: u64,
        vn: VnId,
        eid: Eid,
        rloc: Rloc,
        ttl_secs: u32,
        want_notify: bool,
        now: SimTime,
    ) -> Outbox {
        let ttl = if ttl_secs == 0 {
            self.default_ttl
        } else {
            SimDuration::from_secs(u64::from(ttl_secs))
        };
        let owner = partition::owner_of(&eid, self.shards.len());
        let shard = &mut self.shards[owner];
        shard.registers += 1;
        let outcome = shard.db.register(vn, eid, rloc, ttl, now);
        let mut out = Outbox::new();

        if let RegisterOutcome::Moved { previous } = outcome {
            shard.moves += 1;
            // Fig. 5 step 2: tell the previous edge where the endpoint
            // went so it can forward in-flight traffic and refresh.
            out.push((
                previous,
                Message::MapNotify {
                    nonce: 0,
                    vn,
                    eid,
                    new_rloc: rloc,
                },
            ));
        }

        if want_notify {
            // Registration ack.
            out.push((
                rloc,
                Message::MapNotify {
                    nonce,
                    vn,
                    eid,
                    new_rloc: rloc,
                },
            ));
        }

        // Refreshes change nothing for the data plane: no delta.
        if !matches!(outcome, RegisterOutcome::Refreshed) {
            self.fanout.publish(vn, eid, rloc, false);
        }
        out
    }

    /// Explicit withdraw (endpoint offboarded); enqueues the removal
    /// delta toward subscribers.
    pub fn withdraw(&mut self, vn: VnId, eid: Eid) {
        let owner = partition::owner_of(&eid, self.shards.len());
        let shard = &mut self.shards[owner];
        if let Some(old) = shard.db.withdraw(vn, eid) {
            self.fanout.publish(vn, eid, old.rloc, true);
        }
    }

    /// Drains pending pub/sub work into `(destination, Publish)` pairs:
    /// snapshot resyncs first (walking exactly the affected VN across
    /// the owner shards, in shard order — deterministic), then queued
    /// deltas.
    pub fn flush_publishes(&mut self) -> Outbox {
        let shards = &self.shards;
        self.fanout.flush(|vn, emit| {
            for shard in shards {
                // A down shard's slice is unreachable: snapshots omit
                // it (subscribers pick the entries up through deltas as
                // edges re-register after the shard recovers).
                if shard.down {
                    continue;
                }
                for (prefix, rec) in shard.db.iter_vn(vn) {
                    emit(prefix, rec.rloc);
                }
            }
        })
    }

    /// Expires lapsed registrations, sweeping shards **in parallel** on
    /// scoped worker threads when there is more than one (each sweep
    /// only touches its own shard's `&mut`). Withdraw deltas enqueue in
    /// shard order regardless of thread scheduling, so the observable
    /// outcome is deterministic. Returns how many registrations expired;
    /// follow with [`PartitionedMapServer::flush_publishes`].
    pub fn expire(&mut self, now: SimTime) -> usize {
        let dead = if self.shards.len() > 1 {
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .map(|shard| s.spawn(move || shard.sweep(now)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sweep worker panicked"))
                    .collect::<Vec<_>>()
            })
        } else {
            self.shards.iter_mut().map(|s| s.sweep(now)).collect()
        };
        self.enqueue_withdrawals(dead)
    }

    /// The same sweep run sequentially on the calling thread — the
    /// baseline the `ctrl_plane` bench measures the parallel sweep
    /// against. Observable behavior is identical to
    /// [`PartitionedMapServer::expire`].
    pub fn expire_sequential(&mut self, now: SimTime) -> usize {
        let dead: Vec<_> = self.shards.iter_mut().map(|s| s.sweep(now)).collect();
        self.enqueue_withdrawals(dead)
    }

    fn enqueue_withdrawals(&mut self, dead: Vec<Vec<(VnId, Eid, Rloc)>>) -> usize {
        let mut total = 0;
        for shard_dead in dead {
            total += shard_dead.len();
            for (vn, eid, old_rloc) in shard_dead {
                self.fanout.publish(vn, eid, old_rloc, true);
            }
        }
        total
    }

    /// Total registrations across shards (live or expired).
    pub fn db_len(&self) -> usize {
        self.shards.iter().map(|s| s.db.len()).sum()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.db_len() == 0
    }

    /// Longest-prefix lookup of `eid` in `vn` on its owner shard.
    pub fn lookup(
        &self,
        vn: VnId,
        eid: Eid,
        now: SimTime,
    ) -> Option<(EidPrefix, sda_lisp::MappingRecord)> {
        self.shards[partition::owner_of(&eid, self.shards.len())]
            .db
            .lookup(vn, eid, now)
    }

    /// Iterates every registered mapping across all shards — ground
    /// truth for convergence checkers comparing subscriber views
    /// against the server database.
    pub fn iter_db(&self) -> impl Iterator<Item = (VnId, EidPrefix, &sda_lisp::MappingRecord)> {
        self.shards.iter().flat_map(|s| s.db.iter())
    }

    /// Per-shard entry counts (partition balance checks).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.db.len()).collect()
    }

    /// Per-shard answered-request counts (load balance checks).
    pub fn request_distribution(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.replies + s.negative_replies)
            .collect()
    }

    /// Aggregated counters across shards, publish count from the
    /// fan-out (publishes emitted by flushes).
    pub fn stats(&self) -> MapServerStats {
        let mut total = MapServerStats::default();
        for s in &self.shards {
            total.replies += s.replies;
            total.negative_replies += s.negative_replies;
            total.registers += s.registers;
            total.moves += s.moves;
        }
        total.publishes = self.fanout.delivered();
        total
    }

    /// Gap → snapshot resyncs forced by queue overflow so far.
    pub fn pubsub_gaps(&self) -> u64 {
        self.fanout.gaps()
    }

    /// High-water mark across per-subscriber delta queues (bounded-queue
    /// proofs: must never exceed the fan-out's queue cap).
    pub fn pubsub_peak_depth(&self) -> usize {
        self.fanout.peak_depth()
    }

    /// Current publish-sequence watermark of `vn`'s delta stream (0
    /// before any change). Snapshot resyncs are stamped with this value,
    /// so a subscriber that just resynced resumes its stream here.
    pub fn pubsub_seq(&self, vn: VnId) -> u64 {
        self.fanout.current_seq(vn)
    }

    /// Re-lays every shard's trie arenas in DFS preorder once a
    /// registration storm settles (see `MappingDb::compact`).
    pub fn compact(&mut self) {
        for s in &mut self.shards {
            s.db.compact();
        }
    }

    /// Aggregated trie-arena diagnostics across all shards — the sum the
    /// scale-tier acceptance compares against a single server's.
    pub fn mem_stats(&self) -> MemStats {
        let mut total = MemStats::default();
        for s in &self.shards {
            total.merge(&s.db.mem_stats());
        }
        total
    }

    /// Per-shard trie-arena diagnostics.
    pub fn shard_mem_stats(&self) -> Vec<MemStats> {
        self.shards.iter().map(|s| s.db.mem_stats()).collect()
    }
}

/// Host EID of a full-length prefix.
fn host_eid_of(prefix: &EidPrefix) -> Option<Eid> {
    match prefix {
        EidPrefix::V4(p) if p.len() == 32 => Some(Eid::V4(p.addr())),
        EidPrefix::V6(p) if p.len() == 128 => Some(Eid::V6(p.addr())),
        EidPrefix::Mac(p) if p.len() == 48 => Some(Eid::Mac(p.addr())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    /// EIDs spread across /16 blocks so 4 shards all get work.
    fn eid(n: u32) -> Eid {
        Eid::V4(Ipv4Addr::from(0x0A00_0000 | ((n % 256) << 16) | n))
    }

    fn rl(n: u16) -> Rloc {
        Rloc::for_router_index(n)
    }

    fn server(shards: usize) -> PartitionedMapServer {
        PartitionedMapServer::new(rl(1000), shards)
    }

    fn register(vn_: VnId, eid_: Eid, rloc: Rloc, ttl_secs: u32) -> Message {
        Message::MapRegister {
            nonce: 0,
            vn: vn_,
            eid: eid_,
            rloc,
            ttl_secs,
            want_notify: false,
        }
    }

    fn request(vn_: VnId, eid_: Eid, itr: Rloc) -> Message {
        Message::MapRequest {
            nonce: 1,
            smr: false,
            vn: vn_,
            eid: eid_,
            itr_rloc: itr,
        }
    }

    #[test]
    fn register_lands_on_exactly_one_shard() {
        let mut s = server(4);
        for i in 0..64 {
            s.handle(register(vn(1), eid(i), rl(1), 300), SimTime::ZERO);
        }
        assert_eq!(s.db_len(), 64, "total state is the world, not 4x");
        let lens = s.shard_lens();
        assert_eq!(lens.iter().sum::<usize>(), 64);
        assert!(
            lens.iter().filter(|&&l| l > 0).count() >= 2,
            "spread across shards: {lens:?}"
        );
    }

    #[test]
    fn requests_route_to_owner_and_answer() {
        let mut s = server(4);
        for i in 0..64 {
            s.handle(
                register(vn(1), eid(i), rl((i % 8) as u16), 300),
                SimTime::ZERO,
            );
        }
        for i in 0..64 {
            let out = s.handle(request(vn(1), eid(i), rl(99)), SimTime::ZERO);
            assert_eq!(out.len(), 1);
            match &out[0].1 {
                Message::MapReply { negative, rloc, .. } => {
                    assert!(!negative);
                    assert_eq!(*rloc, Some(rl((i % 8) as u16)));
                }
                other => panic!("expected MapReply, got {other:?}"),
            }
        }
        let dist = s.request_distribution();
        assert_eq!(dist.iter().sum::<u64>(), 64);
    }

    #[test]
    fn unknown_eid_answers_negative() {
        let mut s = server(4);
        let out = s.handle(request(vn(1), eid(7), rl(99)), SimTime::ZERO);
        assert!(matches!(
            out[0].1,
            Message::MapReply {
                negative: true,
                ttl_secs: NEGATIVE_TTL_SECS,
                ..
            }
        ));
    }

    #[test]
    fn move_notifies_previous_edge_once() {
        let mut s = server(4);
        s.handle(register(vn(1), eid(3), rl(1), 300), SimTime::ZERO);
        let out = s.handle(register(vn(1), eid(3), rl(2), 300), SimTime::ZERO);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, rl(1), "notify goes to the previous edge");
        assert!(matches!(out[0].1, Message::MapNotify { .. }));
        assert_eq!(s.stats().moves, 1);
    }

    #[test]
    fn subscriber_snapshot_then_incremental_stream() {
        let mut s = server(4);
        for i in 0..16 {
            s.handle(register(vn(1), eid(i), rl(1), 300), SimTime::ZERO);
        }
        s.handle(
            Message::Subscribe {
                nonce: 0,
                vn: vn(1),
                subscriber: rl(9),
            },
            SimTime::ZERO,
        );
        let out = s.flush_publishes();
        assert_eq!(out.len(), 16, "snapshot of the subscribed VN");
        // One change -> exactly one delta publish, not a re-walk.
        s.handle(register(vn(1), eid(3), rl(2), 300), SimTime::ZERO);
        let out = s.flush_publishes();
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0].1,
            Message::Publish {
                withdraw: false,
                ..
            }
        ));
        // Refresh publishes nothing.
        s.handle(register(vn(1), eid(3), rl(2), 300), SimTime::ZERO);
        assert!(s.flush_publishes().is_empty());
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree() {
        let now = SimTime::ZERO;
        let later = SimTime::ZERO + SimDuration::from_secs(301);
        let mut par = server(4);
        let mut seq = server(4);
        for i in 0..256 {
            // Half expire (ttl 300), half survive (ttl 3600).
            let ttl = if i % 2 == 0 { 300 } else { 3600 };
            par.handle(register(vn(1 + i % 3), eid(i), rl(1), ttl), now);
            seq.handle(register(vn(1 + i % 3), eid(i), rl(1), ttl), now);
        }
        par.handle(
            Message::Subscribe {
                nonce: 0,
                vn: vn(1),
                subscriber: rl(9),
            },
            now,
        );
        seq.handle(
            Message::Subscribe {
                nonce: 0,
                vn: vn(1),
                subscriber: rl(9),
            },
            now,
        );
        par.flush_publishes();
        seq.flush_publishes();

        assert_eq!(par.expire(later), 128);
        assert_eq!(seq.expire_sequential(later), 128);
        assert_eq!(par.db_len(), seq.db_len());
        let out_par = par.flush_publishes();
        let out_seq = seq.flush_publishes();
        assert_eq!(out_par, out_seq, "deterministic shard-order withdrawals");
        assert!(!out_par.is_empty());
        assert!(out_par
            .iter()
            .all(|(_, m)| matches!(m, Message::Publish { withdraw: true, .. })));
    }

    #[test]
    fn memory_is_partitioned_not_replicated() {
        let world = 4096;
        let mut single = server(1);
        let mut four = server(4);
        for i in 0..world {
            single.handle(register(vn(1), eid(i), rl(1), 3600), SimTime::ZERO);
            four.handle(register(vn(1), eid(i), rl(1), 3600), SimTime::ZERO);
        }
        single.compact();
        four.compact();
        let s1 = single.mem_stats().capacity_bytes as f64;
        let s4 = four.mem_stats().capacity_bytes as f64;
        assert!(
            s4 <= s1 * 1.25,
            "4-shard memory {s4} exceeds 1.25x single-shard {s1}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        PartitionedMapServer::new(rl(1), 0);
    }

    #[test]
    fn admission_sheds_with_server_busy_and_retry_after() {
        use crate::admission::{AdmissionConfig, ClassBudget};
        let mut s = server(1);
        s.set_admission(Some(AdmissionConfig {
            requests: ClassBudget::new(1.0, 2.0),
            registers: ClassBudget::new(1.0, 1.0),
            subscribes: ClassBudget::new(1.0, 1.0),
            retry_after: SimDuration::from_millis(750),
        }));
        let now = SimTime::ZERO;
        // Register budget: first admitted, second shed with a busy reply
        // back to the registering edge.
        let (d, _) = s.handle_with_disposition(register(vn(1), eid(1), rl(1), 300), now);
        assert_eq!(d, Disposition::Served);
        let (d, out) = s.handle_with_disposition(register(vn(1), eid(2), rl(1), 300), now);
        assert_eq!(d, Disposition::Shed);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, rl(1));
        assert!(matches!(
            out[0].1,
            Message::ServerBusy {
                class: BusyClass::Register,
                retry_after_ms: 750,
                ..
            }
        ));
        // Request budget is independent: registers being exhausted must
        // not starve resolution.
        let (d, out) = s.handle_with_disposition(request(vn(1), eid(1), rl(9)), now);
        assert_eq!(d, Disposition::Served);
        assert!(matches!(out[0].1, Message::MapReply { .. }));
        assert_eq!(s.overload_stats().shed_registers, 1);
        assert_eq!(s.overload_stats().shed_requests, 0);
        // Refilled after a second, the shed register is admitted.
        let later = now + SimDuration::from_secs(1);
        let (d, _) = s.handle_with_disposition(register(vn(1), eid(2), rl(1), 300), later);
        assert_eq!(d, Disposition::Served);
    }

    #[test]
    fn resubscribe_bypasses_the_subscribe_budget() {
        use crate::admission::{AdmissionConfig, ClassBudget};
        let mut s = server(1);
        s.set_admission(Some(AdmissionConfig {
            requests: ClassBudget::new(1000.0, 1000.0),
            registers: ClassBudget::new(1000.0, 1000.0),
            subscribes: ClassBudget::new(0.001, 1.0),
            retry_after: SimDuration::from_millis(500),
        }));
        let now = SimTime::ZERO;
        let sub = |n: u64, v: u32, r: u16| Message::Subscribe {
            nonce: n,
            vn: vn(v),
            subscriber: rl(r),
        };
        // First subscribe takes the only token.
        let (d, _) = s.handle_with_disposition(sub(1, 1, 9), now);
        assert_eq!(d, Disposition::Served);
        // A different subscriber is shed (budget empty)...
        let (d, out) = s.handle_with_disposition(sub(2, 1, 8), now);
        assert_eq!(d, Disposition::Shed);
        assert!(matches!(
            out[0].1,
            Message::ServerBusy {
                class: BusyClass::Subscribe,
                ..
            }
        ));
        // ...but the known stream's resync goes straight through.
        let (d, out) = s.handle_with_disposition(sub(3, 1, 9), now);
        assert_eq!(d, Disposition::Served);
        assert!(matches!(out[0].1, Message::SubscribeAck { .. }));
    }

    #[test]
    fn down_shard_drops_its_traffic_and_recovers() {
        let mut s = server(4);
        for i in 0..64 {
            s.handle(register(vn(1), eid(i), rl(1), 300), SimTime::ZERO);
        }
        let victim = crate::partition::owner_of(&eid(0), 4);
        let before = s.db_len();
        s.crash_shard(victim);
        assert!(s.shard_down(victim));
        assert!(s.db_len() < before, "crashed shard lost its slice");
        // Owner-routed traffic is dropped without reply...
        let (d, out) = s.handle_with_disposition(request(vn(1), eid(0), rl(9)), SimTime::ZERO);
        assert_eq!(d, Disposition::ShardDown);
        assert!(out.is_empty());
        let (d, _) = s.handle_with_disposition(register(vn(1), eid(0), rl(2), 300), SimTime::ZERO);
        assert_eq!(d, Disposition::ShardDown);
        assert_eq!(s.overload_stats().shard_drops, 2);
        // ...while other shards keep serving.
        let other = (0..64)
            .map(eid)
            .find(|e| crate::partition::owner_of(e, 4) != victim)
            .unwrap();
        let (d, out) = s.handle_with_disposition(
            Message::MapRequest {
                nonce: 1,
                smr: false,
                vn: vn(1),
                eid: other,
                itr_rloc: rl(9),
            },
            SimTime::ZERO,
        );
        assert_eq!(d, Disposition::Served);
        assert!(matches!(
            out[0].1,
            Message::MapReply {
                negative: false,
                ..
            }
        ));
        // After restart, the shard serves again (empty until refreshes).
        s.restart_shard(victim);
        let (d, out) = s.handle_with_disposition(request(vn(1), eid(0), rl(9)), SimTime::ZERO);
        assert_eq!(d, Disposition::Served);
        assert!(matches!(out[0].1, Message::MapReply { negative: true, .. }));
        let (d, _) = s.handle_with_disposition(register(vn(1), eid(0), rl(2), 300), SimTime::ZERO);
        assert_eq!(d, Disposition::Served);
        assert_eq!(
            s.lookup(vn(1), eid(0), SimTime::ZERO).unwrap().1.rloc,
            rl(2)
        );
    }

    #[test]
    fn partitioned_shard_keeps_state_and_is_left_out_of_snapshots() {
        let mut s = server(4);
        for i in 0..32 {
            s.handle(register(vn(1), eid(i), rl(1), 300), SimTime::ZERO);
        }
        let victim = crate::partition::owner_of(&eid(0), 4);
        let full = s.db_len();
        s.partition_shard(victim);
        assert_eq!(s.db_len(), full, "partition keeps state");
        // A snapshot taken mid-partition omits the victim's slice.
        s.handle(
            Message::Subscribe {
                nonce: 0,
                vn: vn(1),
                subscriber: rl(9),
            },
            SimTime::ZERO,
        );
        let snap = s.flush_publishes();
        assert!(snap.len() < full, "down shard excluded from snapshot");
        s.heal_shard(victim);
        let (d, out) = s.handle_with_disposition(request(vn(1), eid(0), rl(9)), SimTime::ZERO);
        assert_eq!(d, Disposition::Served);
        assert!(matches!(
            out[0].1,
            Message::MapReply {
                negative: false,
                ..
            }
        ));
    }
}
