//! Token-bucket admission control for the partitioned map-server.
//!
//! Overload protection is budgeted **per shard and per message class**:
//! requests, registers and subscribes each draw from their own bucket,
//! so a register storm (endpoint churn, reboot re-registration waves)
//! can never starve resolution, and vice versa. A message that finds
//! its bucket empty is *shed*, not silently dropped: the server answers
//! with [`Message::ServerBusy`](sda_wire::lisp::Message::ServerBusy)
//! carrying a retry-after hint, so the sender reschedules instead of
//! hammering its normal (faster) retransmit backoff.
//!
//! Buckets refill lazily from the simulated clock — pure `f64`
//! arithmetic on event timestamps, so admission decisions replay
//! byte-identically for a given scenario seed.

use sda_simnet::{SimDuration, SimTime};

/// Budget of one message class: sustained rate plus burst depth.
#[derive(Clone, Copy, Debug)]
pub struct ClassBudget {
    /// Sustained admissions per second.
    pub rate: f64,
    /// Bucket depth: how many back-to-back admissions a full bucket
    /// allows before the sustained rate gates.
    pub burst: f64,
}

impl ClassBudget {
    /// A budget of `rate` admissions/s with burst depth `burst`.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0, "admission rate must be positive");
        assert!(burst >= 1.0, "burst must admit at least one message");
        ClassBudget { rate, burst }
    }
}

/// Per-shard, per-class admission budgets plus the retry-after hint
/// attached to shed replies.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Map-Request budget (per shard).
    pub requests: ClassBudget,
    /// Map-Register budget (per shard).
    pub registers: ClassBudget,
    /// Subscribe budget (server-wide; subscriptions are not sharded).
    /// Resubscribes of an already-known `(VN, subscriber)` stream —
    /// i.e. resyncs — bypass this bucket so self-healing never loses
    /// to churn.
    pub subscribes: ClassBudget,
    /// How long shed senders are told to wait before retrying.
    pub retry_after: SimDuration,
}

impl AdmissionConfig {
    /// The same `rate`/`burst` budget for every class.
    pub fn uniform(rate: f64, burst: f64, retry_after: SimDuration) -> Self {
        let b = ClassBudget::new(rate, burst);
        AdmissionConfig {
            requests: b,
            registers: b,
            subscribes: b,
            retry_after,
        }
    }

    /// The retry-after hint in whole milliseconds (as carried on the
    /// wire), at least 1.
    pub fn retry_after_ms(&self) -> u32 {
        (self.retry_after.as_millis() as u32).max(1)
    }
}

/// A lazily-refilled token bucket on the simulated clock.
#[derive(Clone, Copy, Debug)]
pub(crate) struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    pub(crate) fn new(budget: ClassBudget) -> Self {
        TokenBucket {
            rate: budget.rate,
            burst: budget.burst,
            tokens: budget.burst,
            last: SimTime::ZERO,
        }
    }

    /// Takes one token if available, refilling for the time elapsed
    /// since the last call first. Returns false when the bucket is
    /// empty (the message should be shed).
    pub(crate) fn try_take(&mut self, now: SimTime) -> bool {
        let elapsed = now.saturating_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate).min(self.burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_admits_burst_then_gates_at_rate() {
        let mut b = TokenBucket::new(ClassBudget::new(10.0, 3.0));
        let t0 = SimTime::ZERO;
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(b.try_take(t0));
        assert!(!b.try_take(t0), "burst exhausted");
        // 100 ms at 10/s refills exactly one token.
        let t1 = t0 + SimDuration::from_millis(100);
        assert!(b.try_take(t1));
        assert!(!b.try_take(t1));
    }

    #[test]
    fn bucket_caps_refill_at_burst() {
        let mut b = TokenBucket::new(ClassBudget::new(10.0, 2.0));
        let t0 = SimTime::ZERO;
        assert!(b.try_take(t0));
        // A long idle period refills to burst, not unbounded.
        let t1 = t0 + SimDuration::from_secs(3600);
        assert!(b.try_take(t1));
        assert!(b.try_take(t1));
        assert!(!b.try_take(t1), "refill capped at burst depth 2");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        ClassBudget::new(0.0, 1.0);
    }
}
