//! Prefix-aligned partitioning of EID space across shards.
//!
//! The partition key is the top [`PARTITION_BITS`] bits of
//! [`Eid::key_bits`] (the left-aligned trie key), tagged by address
//! family so IPv4, IPv6 and MAC EIDs partition independently. Two
//! properties make this routing **exact** rather than approximate:
//!
//! 1. [`MappingDb`](sda_lisp::MappingDb) only ever stores *host*
//!    registrations (`Message::MapRegister` carries an [`Eid`], inserted
//!    as `EidPrefix::host`), so a register and every later request for
//!    the same EID share the full key — they can never straddle a
//!    partition boundary.
//! 2. The partition is aligned at `/PARTITION_BITS`: any future
//!    aggregate registration with a prefix at least that long would
//!    still map wholly into one block.
//!
//! `owner = block % shards` keeps the map stable under any shard count
//! without a directory.

use sda_types::Eid;

/// Partition granularity in key bits. 16 splits a typical campus
/// 10.0.0.0/8 EID plan across 256 blocks (the second octet), fine
/// enough to balance 1/2/4-shard deployments; coarser (8) would park an
/// entire /8 on one shard.
pub const PARTITION_BITS: u32 = 16;

/// The partition block of `eid`: its address family tag plus the top
/// [`PARTITION_BITS`] of its left-aligned trie key.
pub fn block_of(eid: &Eid) -> u32 {
    let family = match eid {
        Eid::V4(_) => 0u32,
        Eid::V6(_) => 1,
        Eid::Mac(_) => 2,
    };
    let top = (eid.key_bits() >> (128 - PARTITION_BITS)) as u32;
    (family << PARTITION_BITS) | top
}

/// The shard owning `eid` among `shards` shards.
///
/// # Panics
/// Panics if `shards` is zero.
pub fn owner_of(eid: &Eid, shards: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    block_of(eid) as usize % shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use sda_types::MacAddr;
    use std::net::Ipv4Addr;

    #[test]
    fn owner_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for i in 0..1000u32 {
                let eid = Eid::V4(Ipv4Addr::from(0x0A00_0000 | (i * 65_537)));
                let o = owner_of(&eid, shards);
                assert!(o < shards);
                assert_eq!(o, owner_of(&eid, shards), "stable");
            }
        }
    }

    #[test]
    fn campus_plan_spreads_across_shards() {
        // A 10.0.0.0/8 plan with /16 spread (the second octet varies):
        // every shard must own a fair share.
        let shards = 4;
        let mut counts = [0usize; 4];
        for i in 0..100_000u32 {
            let eid = Eid::V4(Ipv4Addr::from(0x0A00_0000 | (i << 4)));
            counts[owner_of(&eid, shards)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(
                *c > 100_000 / shards / 2,
                "shard {i} owns only {c}/100000 EIDs"
            );
        }
    }

    #[test]
    fn families_partition_independently() {
        let v4 = Eid::V4(Ipv4Addr::new(10, 0, 0, 1));
        let mac = Eid::Mac(MacAddr::from_seed(1));
        assert_ne!(block_of(&v4), block_of(&mac));
    }

    #[test]
    fn same_top_bits_same_block() {
        // Hosts inside one /16 always share a block (prefix alignment).
        let a = Eid::V4(Ipv4Addr::new(10, 7, 0, 1));
        let b = Eid::V4(Ipv4Addr::new(10, 7, 255, 254));
        assert_eq!(block_of(&a), block_of(&b));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        owner_of(&Eid::V4(Ipv4Addr::new(10, 0, 0, 1)), 0);
    }
}
