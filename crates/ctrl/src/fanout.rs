//! Incremental pub/sub delta fan-out.
//!
//! The single `MapServer` walks the whole VN on every subscribe and
//! touches every subscriber's stream through one global counter. Here
//! every mapping change enqueues one [`Delta`] into the bounded queue of
//! each subscriber of *that VN* — O(changes × subscribers-of-that-VN),
//! never O(world) — stamped with a **per-VN** sequence number.
//!
//! Snapshot resync rides the same path as initial subscription: a
//! `(subscriber, VN)` stream is either `Live` (deltas flow) or pending
//! `Snapshot` (deltas are suppressed; the next
//! [`DeltaFanout::flush`] walks the owner shards' current state for
//! that VN instead). Queue overflow — the subscriber fell too far
//! behind — drops that VN's queued deltas and flips the stream back to
//! `Snapshot`: a gap never delivers a partial view, it re-synchronizes.
//!
//! Sequence semantics on the wire ([`Message::Publish`]'s `nonce`):
//! delta publishes carry the change's own per-VN sequence number;
//! snapshot publishes carry the VN's current watermark (snapshots
//! describe *state as of* that sequence, and must not advance the
//! sequence or live subscribers of the same VN would see phantom gaps).

use std::collections::{BTreeMap, VecDeque};

use sda_types::{Eid, EidPrefix, Rloc, VnId};
use sda_wire::lisp::Message;

/// Default per-subscriber delta queue bound. A subscriber further than
/// this many undelivered changes behind is resynced by snapshot instead.
pub const DEFAULT_QUEUE_CAP: usize = 1024;

/// One pending mapping change for one subscriber.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Delta {
    /// The VN the change belongs to.
    pub vn: VnId,
    /// The (host) EID that changed.
    pub eid: Eid,
    /// The new RLOC (or, for withdrawals, the last one).
    pub rloc: Rloc,
    /// True when the mapping was removed.
    pub withdraw: bool,
    /// Per-VN publish sequence number.
    pub seq: u64,
}

/// Sync state of one `(subscriber, VN)` stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VnSync {
    /// Snapshot pending: deltas suppressed until the next flush walks
    /// the current state (initial subscribe, or gap recovery).
    Snapshot,
    /// Deltas flow.
    Live,
}

struct Sub {
    rloc: Rloc,
    /// Bounded queue of undelivered deltas, across this subscriber's VNs.
    queue: VecDeque<Delta>,
    vns: BTreeMap<VnId, VnSync>,
}

/// Per-subscriber delta queues plus the per-VN sequence authority.
pub struct DeltaFanout {
    subs: Vec<Sub>,
    /// vn → indices into `subs`.
    by_vn: BTreeMap<VnId, Vec<usize>>,
    /// Per-VN publish sequence (the source of truth for gap detection).
    seqs: BTreeMap<VnId, u64>,
    cap: usize,
    delivered: u64,
    gaps: u64,
    /// High-water mark across all subscriber queues (cap audits).
    peak_depth: usize,
}

impl DeltaFanout {
    /// Empty fan-out with per-subscriber queue bound `cap`.
    ///
    /// # Panics
    /// Panics if `cap` is zero (a zero-length queue could never go live).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        DeltaFanout {
            subs: Vec::new(),
            by_vn: BTreeMap::new(),
            seqs: BTreeMap::new(),
            cap,
            delivered: 0,
            gaps: 0,
            peak_depth: 0,
        }
    }

    /// True when `rloc` already has a stream (live or snapshot-pending)
    /// for `vn` — i.e. a new Subscribe would be a resync, not a fresh
    /// subscription. Admission control uses this to let self-healing
    /// resubscribes bypass the subscribe budget.
    pub fn is_subscribed(&self, vn: VnId, rloc: Rloc) -> bool {
        self.subs
            .iter()
            .any(|s| s.rloc == rloc && s.vns.contains_key(&vn))
    }

    /// Subscribes `rloc` to `vn`'s stream, marking it for snapshot on
    /// the next flush. Idempotent (re-subscribing forces a resync).
    pub fn subscribe(&mut self, vn: VnId, rloc: Rloc) {
        let idx = match self.subs.iter().position(|s| s.rloc == rloc) {
            Some(i) => i,
            None => {
                self.subs.push(Sub {
                    rloc,
                    queue: VecDeque::new(),
                    vns: BTreeMap::new(),
                });
                self.subs.len() - 1
            }
        };
        // A forced resync makes any queued deltas for this VN redundant.
        self.subs[idx].queue.retain(|d| d.vn != vn);
        self.subs[idx].vns.insert(vn, VnSync::Snapshot);
        let idxs = self.by_vn.entry(vn).or_default();
        if !idxs.contains(&idx) {
            idxs.push(idx);
        }
    }

    /// Records one mapping change, enqueueing a delta for every live
    /// subscriber of `vn`. Allocates the change's per-VN sequence number
    /// even when nobody listens (the stream must stay gap-free for
    /// subscribers that join later).
    pub fn publish(&mut self, vn: VnId, eid: Eid, rloc: Rloc, withdraw: bool) {
        let seq = {
            let s = self.seqs.entry(vn).or_insert(0);
            *s += 1;
            *s
        };
        let Some(idxs) = self.by_vn.get(&vn) else {
            return;
        };
        for &i in idxs {
            let sub = &mut self.subs[i];
            match sub.vns.get_mut(&vn) {
                // Snapshot pending: the flush-time walk of current state
                // already covers this change; a delta would double it.
                Some(VnSync::Snapshot) | None => {}
                Some(state @ VnSync::Live) => {
                    if sub.queue.len() >= self.cap {
                        // Gap: this subscriber fell too far behind. Drop
                        // the VN's queued deltas and resync by snapshot —
                        // never deliver a stream with a hole in it.
                        *state = VnSync::Snapshot;
                        sub.queue.retain(|d| d.vn != vn);
                        self.gaps += 1;
                    } else {
                        sub.queue.push_back(Delta {
                            vn,
                            eid,
                            rloc,
                            withdraw,
                            seq,
                        });
                        self.peak_depth = self.peak_depth.max(sub.queue.len());
                    }
                }
            }
        }
    }

    /// Drains every subscriber's stream into `(destination, Publish)`
    /// pairs: pending snapshots first (state supplied by `snapshot`,
    /// which must emit every `(prefix, rloc)` currently mapped in the
    /// given VN), then queued deltas. Deterministic: subscribers in
    /// subscription order, snapshot VNs in `VnId` order.
    pub fn flush<F>(&mut self, mut snapshot: F) -> Vec<(Rloc, Message)>
    where
        F: FnMut(VnId, &mut dyn FnMut(EidPrefix, Rloc)),
    {
        let mut out = Vec::new();
        let mut delivered = 0u64;
        for sub in &mut self.subs {
            let to = sub.rloc;
            for (&vn, state) in sub.vns.iter_mut() {
                if *state == VnSync::Snapshot {
                    let watermark = self.seqs.get(&vn).copied().unwrap_or(0);
                    snapshot(vn, &mut |prefix, rloc| {
                        delivered += 1;
                        out.push((
                            to,
                            Message::Publish {
                                nonce: watermark,
                                vn,
                                prefix,
                                rloc,
                                withdraw: false,
                            },
                        ));
                    });
                    *state = VnSync::Live;
                }
            }
            for d in sub.queue.drain(..) {
                delivered += 1;
                out.push((
                    to,
                    Message::Publish {
                        nonce: d.seq,
                        vn: d.vn,
                        prefix: EidPrefix::host(d.eid),
                        rloc: d.rloc,
                        withdraw: d.withdraw,
                    },
                ));
            }
        }
        self.delivered += delivered;
        out
    }

    /// The current sequence watermark of `vn` (0 before any change).
    pub fn current_seq(&self, vn: VnId) -> u64 {
        self.seqs.get(&vn).copied().unwrap_or(0)
    }

    /// Publishes emitted by flushes so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Queue-overflow resyncs forced so far.
    pub fn gaps(&self) -> u64 {
        self.gaps
    }

    /// High-water mark of any single subscriber queue so far — provably
    /// ≤ the configured cap (overflow resyncs instead of growing).
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Distinct subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subs.len()
    }

    /// Subscriptions across VNs.
    pub fn subscription_count(&self) -> usize {
        self.by_vn.values().map(Vec::len).sum()
    }
}

impl Default for DeltaFanout {
    fn default() -> Self {
        DeltaFanout::new(DEFAULT_QUEUE_CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    fn eid(n: u32) -> Eid {
        Eid::V4(Ipv4Addr::from(0x0A00_0000 | n))
    }

    fn rl(n: u16) -> Rloc {
        Rloc::for_router_index(n)
    }

    /// Flush against an empty world (no snapshot content).
    fn flush_empty(f: &mut DeltaFanout) -> Vec<(Rloc, Message)> {
        f.flush(|_, _| {})
    }

    #[test]
    fn each_change_delivered_exactly_once() {
        let mut f = DeltaFanout::new(64);
        f.subscribe(vn(1), rl(9));
        flush_empty(&mut f); // empty snapshot -> Live
        for i in 0..10 {
            f.publish(vn(1), eid(i), rl(1), false);
        }
        let out = flush_empty(&mut f);
        assert_eq!(out.len(), 10);
        let seqs: Vec<u64> = out
            .iter()
            .map(|(_, m)| match m {
                Message::Publish { nonce, .. } => *nonce,
                other => panic!("expected Publish, got {other:?}"),
            })
            .collect();
        assert_eq!(seqs, (1..=10).collect::<Vec<u64>>(), "contiguous per-VN");
        // Nothing left: a second flush is empty.
        assert!(flush_empty(&mut f).is_empty());
        assert_eq!(f.delivered(), 10);
    }

    #[test]
    fn publish_only_reaches_that_vns_subscribers() {
        let mut f = DeltaFanout::new(64);
        f.subscribe(vn(1), rl(9));
        f.subscribe(vn(2), rl(8));
        flush_empty(&mut f);
        f.publish(vn(1), eid(1), rl(1), false);
        let out = flush_empty(&mut f);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, rl(9), "vn-2 subscriber untouched");
    }

    #[test]
    fn per_vn_sequences_are_independent() {
        let mut f = DeltaFanout::new(64);
        f.publish(vn(1), eid(1), rl(1), false);
        f.publish(vn(1), eid(2), rl(1), false);
        f.publish(vn(2), eid(3), rl(1), false);
        assert_eq!(f.current_seq(vn(1)), 2);
        assert_eq!(
            f.current_seq(vn(2)),
            1,
            "vn-1 traffic must not advance vn-2"
        );
    }

    #[test]
    fn overflow_gap_resyncs_by_snapshot() {
        let mut f = DeltaFanout::new(4);
        f.subscribe(vn(1), rl(9));
        flush_empty(&mut f);
        // 4 fit, the 5th overflows -> gap -> queued deltas dropped.
        for i in 0..5 {
            f.publish(vn(1), eid(i), rl(1), false);
        }
        assert_eq!(f.gaps(), 1);
        // The flush must deliver a snapshot (here: the authoritative
        // world has entries 0..5) stamped at the watermark, not deltas.
        let world: Vec<(EidPrefix, Rloc)> =
            (0..5).map(|i| (EidPrefix::host(eid(i)), rl(1))).collect();
        let out = f.flush(|v, emit| {
            assert_eq!(v, vn(1));
            for (p, r) in &world {
                emit(*p, *r);
            }
        });
        assert_eq!(out.len(), 5);
        for (_, m) in &out {
            match m {
                Message::Publish { nonce, .. } => assert_eq!(*nonce, 5, "watermark"),
                other => panic!("expected Publish, got {other:?}"),
            }
        }
        // Stream is live again afterwards.
        f.publish(vn(1), eid(99), rl(1), false);
        let out = flush_empty(&mut f);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, Message::Publish { nonce: 6, .. }));
    }

    #[test]
    fn changes_while_snapshot_pending_are_not_doubled() {
        let mut f = DeltaFanout::new(64);
        f.subscribe(vn(1), rl(9));
        // Change lands before the first flush: covered by the snapshot.
        f.publish(vn(1), eid(1), rl(1), false);
        let world = [(EidPrefix::host(eid(1)), rl(1))];
        let out = f.flush(|_, emit| {
            for (p, r) in &world {
                emit(*p, *r);
            }
        });
        assert_eq!(out.len(), 1, "snapshot only, no duplicate delta");
    }

    #[test]
    fn sequences_advance_even_with_no_subscribers() {
        let mut f = DeltaFanout::new(64);
        f.publish(vn(1), eid(1), rl(1), false);
        f.subscribe(vn(1), rl(9));
        f.publish(vn(1), eid(2), rl(1), false);
        let world = [
            (EidPrefix::host(eid(1)), rl(1)),
            (EidPrefix::host(eid(2)), rl(1)),
        ];
        let out = f.flush(|_, emit| {
            for (p, r) in &world {
                emit(*p, *r);
            }
        });
        // Snapshot watermark reflects both changes.
        assert!(out
            .iter()
            .all(|(_, m)| matches!(m, Message::Publish { nonce: 2, .. })));
        f.publish(vn(1), eid(3), rl(2), false);
        let out = flush_empty(&mut f);
        assert!(matches!(out[0].1, Message::Publish { nonce: 3, .. }));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        DeltaFanout::new(0);
    }
}
