//! Policy-plane benchmarks: the compiled bitset SGACL against the
//! per-pair-map reference at production scale (1k groups, 100k rules).
//!
//! Four costs, matching the compile-time/enforce-time split:
//!
//! * `verdict_batch32/{compiled,baseline}` — 32 verdicts per iteration,
//!   the lockstep lane width. The compiled path hoists one `vn_view`
//!   per run (exactly what the forwarding pass does) so each verdict is
//!   a shift + mask + `Relaxed` counter tick; the baseline is the
//!   frozen per-pair `BTreeMap` `GroupAcl` the fabric shipped before
//!   the compiled form existed.
//! * `compile/100000` — full matrix → `CompiledAcl` compilation.
//! * `delta_install/64` — publish a snapshot (`clone`) and install a
//!   64-rule SXP delta into it: the epoch-update path, including the
//!   copy-on-write of the touched VN.
//! * `publish/{compiled,baseline}` — the epoch publish alone: `Arc`
//!   pointer copies vs. deep-copying the 100k-entry rule map.
//!
//! The compiled-memory budget for the 1k-group deny-default VN is
//! asserted in **both** full and smoke modes; the ≥2x verdict bar is
//! asserted in full mode only.

use std::hint::black_box;
use std::time::Duration;

use criterion::{BenchmarkId, Criterion};
use sda_policy::{Action, CompiledAcl, ConnectivityMatrix, GroupAcl, RuleSubset};
use sda_types::{GroupId, VnId};

/// Groups in the benchmark VN (the paper's 1k-group tier).
const GROUPS: u32 = 1_000;
/// Explicit cells in the matrix: 100 destinations per source group.
const RULES_PER_SRC: u32 = 100;
/// Lockstep lane width — one iteration is one lane batch of verdicts.
const BATCH: usize = 32;
/// Prebuilt probe tuples cycled through so the map walk cannot train on
/// a single hot pair.
const PROBES: usize = 1_024;
/// Hard ceiling for the compiled 1k-group deny-default VN. The two
/// bitset planes alone are 2 x 1000 rows x 16 words x 8 B = 250 KiB;
/// interners and headers ride on top. A per-pair `BTreeMap` at 100k
/// entries costs several times this before node overhead.
const COMPILED_1K_BUDGET_BYTES: usize = 320 * 1024;

fn vn() -> VnId {
    VnId::new(1).expect("24-bit VN id")
}

/// The 1k-group / 100k-rule deny-default matrix. 919 is coprime to
/// 1000, so each source's 100 destinations are distinct and the cell
/// count is exact.
fn build_matrix() -> ConnectivityMatrix {
    let mut m = ConnectivityMatrix::new();
    for src in 0..GROUPS {
        for k in 0..RULES_PER_SRC {
            let dst = (src * 13 + k * 919) % GROUPS;
            let action = if (src + k) % 7 == 0 {
                Action::Deny
            } else {
                Action::Allow
            };
            m.set_rule(vn(), GroupId(src as u16), GroupId(dst as u16), action);
        }
    }
    assert_eq!(m.len(), (GROUPS * RULES_PER_SRC) as usize);
    m
}

/// Probe tuples spread over the whole group space: roughly 10% hit an
/// explicit cell, the rest fall through to the deny default — the mix
/// that exercises both the bit probe and the map miss path.
fn build_probes() -> Vec<(GroupId, GroupId)> {
    (0..PROBES)
        .map(|i| {
            let src = (i * 97) % GROUPS as usize;
            let dst = (i * 389 + 7) % GROUPS as usize;
            (GroupId(src as u16), GroupId(dst as u16))
        })
        .collect()
}

/// A 64-rule SXP delta against one source row, version one past the
/// matrix — the shape of a single operator edit fanned out to an edge.
fn build_delta(matrix: &ConnectivityMatrix) -> RuleSubset {
    let src = GroupId(500);
    RuleSubset {
        version: matrix.version() + 1,
        rules: (0..64u16)
            .map(|d| {
                let action = if d % 2 == 0 {
                    Action::Allow
                } else {
                    Action::Deny
                };
                (
                    vn(),
                    sda_policy::GroupRule {
                        src,
                        dst: GroupId(d),
                        action,
                    },
                )
            })
            .collect(),
    }
}

fn bench_verdicts(
    c: &mut Criterion,
    acl: &CompiledAcl,
    reference: &mut GroupAcl,
    probes: &[(GroupId, GroupId)],
) {
    let mut group = c.benchmark_group("policy_plane");

    let view = acl.vn_view(vn());
    let mut cursor = 0usize;
    group.bench_with_input(
        BenchmarkId::new("verdict_batch32", "compiled"),
        &BATCH,
        |b, _| {
            b.iter(|| {
                let mut dropped = 0u32;
                for _ in 0..BATCH {
                    let (s, d) = probes[cursor];
                    cursor = (cursor + 1) % probes.len();
                    if matches!(view.enforce(s, d, Action::Deny), Action::Deny) {
                        dropped += 1;
                    }
                }
                black_box(dropped)
            });
        },
    );

    let mut cursor = 0usize;
    group.bench_with_input(
        BenchmarkId::new("verdict_batch32", "baseline"),
        &BATCH,
        |b, _| {
            b.iter(|| {
                let mut dropped = 0u32;
                for _ in 0..BATCH {
                    let (s, d) = probes[cursor];
                    cursor = (cursor + 1) % probes.len();
                    if matches!(reference.enforce(vn(), s, d, Action::Deny), Action::Deny) {
                        dropped += 1;
                    }
                }
                black_box(dropped)
            });
        },
    );

    group.finish();
}

fn bench_compile(c: &mut Criterion, matrix: &ConnectivityMatrix) {
    let mut group = c.benchmark_group("policy_plane");
    let rules = matrix.len();
    group.bench_with_input(BenchmarkId::new("compile", rules), &rules, |b, _| {
        b.iter(|| black_box(CompiledAcl::compile(matrix)).len());
    });
    group.finish();
}

fn bench_delta_install(c: &mut Criterion, base: &CompiledAcl, delta: &RuleSubset) {
    let mut group = c.benchmark_group("policy_plane");
    group.bench_with_input(
        BenchmarkId::new("delta_install", delta.len()),
        &delta.len(),
        |b, _| {
            b.iter(|| {
                // Publish a snapshot, then install the delta into it: the
                // `Arc::make_mut` copy-on-write of the touched VN is the
                // real epoch-update cost.
                let mut next = base.clone();
                next.install(delta);
                black_box(next.version())
            });
        },
    );
    group.finish();
}

fn bench_publish(c: &mut Criterion, acl: &CompiledAcl, reference: &GroupAcl) {
    let mut group = c.benchmark_group("policy_plane");
    group.bench_with_input(BenchmarkId::new("publish", "compiled"), &0usize, |b, _| {
        b.iter(|| black_box(acl.clone()).version());
    });
    group.bench_with_input(BenchmarkId::new("publish", "baseline"), &0usize, |b, _| {
        b.iter(|| black_box(reference.clone()).version());
    });
    group.finish();
}

fn main() {
    let smoke = std::env::var("SDA_BENCH_SMOKE").is_ok();
    let mut criterion = if smoke {
        Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_millis(60))
            .warm_up_time(Duration::from_millis(20))
    } else {
        Criterion::default()
            .sample_size(40)
            .measurement_time(Duration::from_millis(600))
            .warm_up_time(Duration::from_millis(200))
    };

    let matrix = build_matrix();
    let mut acl = CompiledAcl::new();
    acl.install_matrix(&matrix);
    let mut reference = GroupAcl::new();
    reference.install_matrix(&matrix);
    let probes = build_probes();
    let delta = build_delta(&matrix);

    // Memory budget: asserted in BOTH modes — a smoke run must still
    // catch a representation regression that blows the compiled size.
    let stats = acl.mem_stats();
    let map_payload = matrix.len() * (std::mem::size_of::<(VnId, GroupId, GroupId)>() + 1);
    eprintln!(
        "compiled 1k-group VN: {} B total ({} B rows + {} B interners), {} rules; \
         per-pair map payload alone ≥ {} B before node overhead",
        stats.total_bytes, stats.row_bytes, stats.interner_bytes, stats.rules, map_payload
    );
    assert!(
        stats.total_bytes <= COMPILED_1K_BUDGET_BYTES,
        "compiled 1k-group VN must fit the {} B budget, got {} B",
        COMPILED_1K_BUDGET_BYTES,
        stats.total_bytes
    );

    bench_verdicts(&mut criterion, &acl, &mut reference, &probes);
    bench_compile(&mut criterion, &matrix);
    bench_delta_install(&mut criterion, &acl, &delta);
    bench_publish(&mut criterion, &acl, &reference);

    let out = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_policy.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_policy.json")
    };
    criterion.write_json(out).expect("write bench json");
    eprintln!("wrote {out}");

    let results = criterion.results();
    let median = |id: &str| {
        results
            .iter()
            .find(|r| r.group == "policy_plane" && r.id == id)
            .map(|r| r.median_ns)
            .unwrap_or_else(|| panic!("missing bench result {id}"))
    };

    let compiled = median("verdict_batch32/compiled");
    let baseline = median("verdict_batch32/baseline");
    let compile_ns = median(&format!("compile/{}", matrix.len()));
    let delta_ns = median(&format!("delta_install/{}", delta.len()));
    let pub_compiled = median("publish/compiled");
    let pub_baseline = median("publish/baseline");

    eprintln!(
        "verdicts (batch of {BATCH}): compiled {:.1} ns ({:.2} ns/verdict), \
         baseline {:.1} ns ({:.2} ns/verdict) — {:.2}x",
        compiled,
        compiled / BATCH as f64,
        baseline,
        baseline / BATCH as f64,
        baseline / compiled
    );
    eprintln!(
        "compile 100k rules: {:.2} ms; delta-install 64 rules into a snapshot: {:.1} us",
        compile_ns / 1e6,
        delta_ns / 1e3
    );
    eprintln!(
        "epoch publish: compiled {:.1} ns vs deep map copy {:.1} ns — {:.0}x",
        pub_compiled,
        pub_baseline,
        pub_baseline / pub_compiled
    );

    if smoke {
        eprintln!("smoke mode: skipping the perf assertions");
        return;
    }

    let ratio = baseline / compiled;
    assert!(
        ratio >= 2.0,
        "batched bitset verdicts must be >= 2x the per-pair map at 1k groups / 100k rules, \
         got {ratio:.2}x ({compiled:.1} ns vs {baseline:.1} ns per batch)"
    );
    assert!(
        pub_baseline / pub_compiled >= 2.0,
        "Arc'd epoch publish must beat the deep copy, got {:.2}x",
        pub_baseline / pub_compiled
    );
}
