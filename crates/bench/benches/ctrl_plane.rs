//! The partitioned control-plane benchmark: `sda-ctrl`'s
//! `PartitionedMapServer` driven by the metro workload (100k and 1M
//! endpoints) across 1/2/4 shards, against the paper-faithful
//! replicate-all `ShardedMapServer`.
//!
//! Run with: `cargo bench -p sda-bench --bench ctrl_plane`
//! Smoke mode (CI): `SDA_BENCH_SMOKE=1 cargo bench -p sda-bench --bench
//! ctrl_plane` — tiny sample sizes, JSON goes to `target/`, timing
//! assertions skipped (the partition-memory budget still holds).
//!
//! Emits `BENCH_ctrl.json` at the workspace root. Schema:
//! `[{group, id, median_ns, mean_ns, p95_ns, iterations}]`. Rows:
//!
//! * `register_s{1,2,4}/{100k,1M}` — one churn move-register against a
//!   preloaded server (owner-shard routing; the per-register cost must
//!   not grow with shard count — the replicate-all deployment's does).
//! * `register_legacy_s4/100000` — the same churn through the
//!   replicate-all `ShardedMapServer` (every register applied 4×).
//! * `register_admitted_s4/100000` — the same churn through an
//!   admission-guarded server with a never-shedding budget: the cost
//!   of the token-bucket probe on the accept path (asserted ≤1.15× the
//!   unguarded `register_s4` median in full mode).
//! * `request_s{1,2,4}/{100k,1M}` — one Map-Request resolution.
//! * `sweep_seq_s4` / `sweep_par_s4` — a full zero-victim expiry
//!   traversal of all shards, sequential vs. scoped worker threads.
//! * `pubsub_delta_s4/{100k,1M}` — one move fanned out to 4 borders
//!   subscribed to every VN, plus the flush: must stay flat across
//!   world size (O(changes × subscribers), never O(world)).
//!
//! Asserted bars:
//! * **both modes** — the 4-shard 1M-endpoint trie arenas sum to at
//!   most 1.25× the single-shard footprint (partitioned, not
//!   replicated).
//! * full mode, ≥4 CPUs — the parallel sweep beats sequential by ≥1.3×
//!   at 1M endpoints (skipped with a notice on smaller hosts, like
//!   `mt_fwd`'s scaling bar).
//! * full mode — `pubsub_delta_s4` at 1M is within 3× of 100k (flat).

use criterion::{black_box, BenchmarkId, Criterion};
use sda_ctrl::PartitionedMapServer;
use sda_lisp::ShardedMapServer;
use sda_simnet::{SimDuration, SimTime};
use sda_types::Rloc;
use sda_wire::lisp::Message;
use sda_workloads::{MetroParams, MetroWorkload};

const SCALES: [u32; 2] = [100_000, 1_000_000];
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn params_for(scale: u32) -> MetroParams {
    match scale {
        100_000 => MetroParams::hundred_k(),
        1_000_000 => MetroParams::full(),
        other => panic!("no metro tier for {other} endpoints"),
    }
}

/// A metro-preloaded partitioned server (every endpoint onboarded).
fn preloaded(w: &MetroWorkload, shards: usize) -> PartitionedMapServer {
    let mut s = PartitionedMapServer::new(Rloc::for_router_index(1000), shards);
    for m in w.initial_registers() {
        s.handle(m, SimTime::ZERO);
    }
    s
}

fn main() {
    let smoke = std::env::var("SDA_BENCH_SMOKE").is_ok();
    let mut criterion = if smoke {
        Criterion::default()
            .sample_size(10)
            .measurement_time(std::time::Duration::from_millis(60))
            .warm_up_time(std::time::Duration::from_millis(20))
    } else {
        Criterion::default()
            .sample_size(30)
            .measurement_time(std::time::Duration::from_millis(500))
            .warm_up_time(std::time::Duration::from_millis(150))
    };
    let now = SimTime::ZERO;
    // Steady state for the zero-victim sweeps: well before any TTL.
    let sweep_at = SimTime::ZERO + SimDuration::from_secs(1);

    // Partition-memory acceptance (both modes): captured while the
    // 1M-endpoint servers are alive below.
    let mut mem_1m_s1: Option<usize> = None;
    let mut mem_1m_s4: Option<usize> = None;

    {
        let mut group = criterion.benchmark_group("ctrl_plane");
        for scale in SCALES {
            let w = MetroWorkload::new(params_for(scale));
            let churn: Vec<Message> = w.churn().collect();
            let requests: Vec<Message> = w.requests().collect();
            // One server per shard count, built (and dropped) in turn to
            // bound peak memory on small hosts.
            for shards in SHARD_COUNTS {
                let mut server = preloaded(&w, shards);
                if scale == 1_000_000 {
                    let bytes = server.mem_stats().capacity_bytes;
                    match shards {
                        1 => mem_1m_s1 = Some(bytes),
                        4 => mem_1m_s4 = Some(bytes),
                        _ => {}
                    }
                }

                let mut k = 0usize;
                group.bench_with_input(
                    BenchmarkId::new(format!("register_s{shards}"), scale),
                    &scale,
                    |b, _| {
                        b.iter(|| {
                            let m = churn[k].clone();
                            k = (k + 1) % churn.len();
                            black_box(server.handle(m, now));
                        });
                    },
                );

                if shards == 4 && scale == 100_000 {
                    // Admission-control overhead on the *accept* path:
                    // the same churn on the same server, guarded by a
                    // budget that never sheds — back-to-back with the
                    // unguarded row so the comparison sees identical
                    // memory and identical load, isolating the one
                    // token-bucket probe per register. The bench clock
                    // is pinned, so the bucket never refills — the
                    // burst must outlast every iteration.
                    server.set_admission(Some(sda_ctrl::AdmissionConfig::uniform(
                        1e12,
                        1e12,
                        SimDuration::from_millis(300),
                    )));
                    let mut k = 0usize;
                    group.bench_with_input(
                        BenchmarkId::new("register_admitted_s4", scale),
                        &scale,
                        |b, _| {
                            b.iter(|| {
                                let m = churn[k].clone();
                                k = (k + 1) % churn.len();
                                black_box(server.handle(m, now));
                            });
                        },
                    );
                    assert_eq!(
                        server.overload_stats().shed_registers,
                        0,
                        "admitted bench must never shed"
                    );
                    server.set_admission(None);
                }

                let mut k = 0usize;
                group.bench_with_input(
                    BenchmarkId::new(format!("request_s{shards}"), scale),
                    &scale,
                    |b, _| {
                        b.iter(|| {
                            let m = requests[k].clone();
                            k = (k + 1) % requests.len();
                            black_box(server.handle(m, now));
                        });
                    },
                );

                if shards == 4 {
                    // Zero-victim traversal of every shard's trie:
                    // repeatable, measures pure sweep wall time.
                    group.bench_with_input(
                        BenchmarkId::new("sweep_seq_s4", scale),
                        &scale,
                        |b, _| {
                            b.iter(|| black_box(server.expire_sequential(sweep_at)));
                        },
                    );
                    group.bench_with_input(
                        BenchmarkId::new("sweep_par_s4", scale),
                        &scale,
                        |b, _| {
                            b.iter(|| black_box(server.expire(sweep_at)));
                        },
                    );

                    // Incremental fan-out: borders subscribe to every
                    // VN; each iteration is one move + the flush that
                    // delivers its deltas. Stays flat across world size.
                    for m in w.subscriptions() {
                        server.handle(m, now);
                    }
                    server.flush_publishes(); // initial snapshots, off the clock
                    let mut k = 0usize;
                    group.bench_with_input(
                        BenchmarkId::new("pubsub_delta_s4", scale),
                        &scale,
                        |b, _| {
                            b.iter(|| {
                                let m = churn[k].clone();
                                k = (k + 1) % churn.len();
                                server.handle(m, now);
                                black_box(server.flush_publishes());
                            });
                        },
                    );
                    assert_eq!(server.pubsub_gaps(), 0, "bench flushes every change");
                }
            }
        }

        // The paper-faithful replicate-all deployment at the smaller
        // tier (4 shards × 100k endpoints each hold the whole world).
        {
            let w = MetroWorkload::new(params_for(100_000));
            let churn: Vec<Message> = w.churn().collect();
            let mut legacy =
                ShardedMapServer::new((0..4).map(|i| Rloc::for_router_index(2000 + i)).collect());
            for m in w.initial_registers() {
                legacy.handle(m, SimTime::ZERO);
            }
            let mut k = 0usize;
            group.bench_with_input(
                BenchmarkId::new("register_legacy_s4", 100_000u32),
                &100_000u32,
                |b, _| {
                    b.iter(|| {
                        let m = churn[k].clone();
                        k = (k + 1) % churn.len();
                        black_box(legacy.handle(m, now));
                    });
                },
            );
        }

        group.finish();
    }

    let out = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_ctrl.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ctrl.json")
    };
    criterion.write_json(out).expect("write BENCH_ctrl.json");
    eprintln!("wrote {out}");

    // Partition-memory budget: asserted in BOTH modes (like the LPM
    // bench's memory bars) — shards partition the world, they must not
    // replicate it.
    let (s1, s4) = (
        mem_1m_s1.expect("1M single-shard footprint captured"),
        mem_1m_s4.expect("1M 4-shard footprint captured"),
    );
    eprintln!(
        "1M-endpoint trie arenas: 1 shard {:.1} MiB, 4 shards {:.1} MiB ({:.2}x)",
        s1 as f64 / (1024.0 * 1024.0),
        s4 as f64 / (1024.0 * 1024.0),
        s4 as f64 / s1 as f64
    );
    assert!(
        (s4 as f64) <= 1.25 * s1 as f64,
        "4-shard 1M footprint exceeds 1.25x single-server: {s4} vs {s1} bytes"
    );

    let results = criterion.results();
    let median = |id: &str| {
        results
            .iter()
            .find(|r| r.group == "ctrl_plane" && r.id == id)
            .map(|r| r.median_ns)
            .expect("bench result present")
    };

    for scale in SCALES {
        eprintln!(
            "{scale} endpoints: register s1/s2/s4 {:.0}/{:.0}/{:.0} ns, request s1/s2/s4 \
             {:.0}/{:.0}/{:.0} ns",
            median(&format!("register_s1/{scale}")),
            median(&format!("register_s2/{scale}")),
            median(&format!("register_s4/{scale}")),
            median(&format!("request_s1/{scale}")),
            median(&format!("request_s2/{scale}")),
            median(&format!("request_s4/{scale}")),
        );
        eprintln!(
            "{scale} endpoints: sweep seq {:.2} ms vs par {:.2} ms ({:.2}x), pubsub delta \
             {:.0} ns",
            median(&format!("sweep_seq_s4/{scale}")) / 1e6,
            median(&format!("sweep_par_s4/{scale}")) / 1e6,
            median(&format!("sweep_seq_s4/{scale}")) / median(&format!("sweep_par_s4/{scale}")),
            median(&format!("pubsub_delta_s4/{scale}")),
        );
    }
    eprintln!(
        "replicate-all register (legacy, 4 shards, 100k): {:.0} ns vs partitioned {:.0} ns",
        median("register_legacy_s4/100000"),
        median("register_s4/100000"),
    );
    let admitted_ratio = median("register_admitted_s4/100000") / median("register_s4/100000");
    eprintln!(
        "admission-guarded register (4 shards, 100k): {:.0} ns vs unguarded {:.0} ns ({:.3}x)",
        median("register_admitted_s4/100000"),
        median("register_s4/100000"),
        admitted_ratio,
    );

    if smoke {
        eprintln!("smoke mode: skipping the timing assertions");
        return;
    }

    // The admission gate stays off the hot path: one token-bucket probe
    // per accepted register, within 1.15x of the unguarded median.
    assert!(
        admitted_ratio <= 1.15,
        "admission overhead on the accept path above the 1.15x bar: {admitted_ratio:.3}x"
    );

    // Delta fan-out must not scale with world size.
    let delta_ratio = median("pubsub_delta_s4/1000000") / median("pubsub_delta_s4/100000");
    assert!(
        delta_ratio <= 3.0,
        "pub/sub delta fan-out grew with world size: {delta_ratio:.2}x from 100k to 1M"
    );

    // Parallel-sweep scaling bar: only meaningful with real cores (the
    // mt_fwd discipline).
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = median("sweep_seq_s4/1000000") / median("sweep_par_s4/1000000");
    if cpus >= 4 {
        assert!(
            speedup >= 1.3,
            "parallel sweep below the 1.3x bar on {cpus} CPUs: {speedup:.2}x"
        );
    } else {
        eprintln!(
            "NOTE: {cpus} CPU(s) — parallel-sweep bar (>=1.3x, needs >=4 CPUs) not armed; \
             measured {speedup:.2}x"
        );
    }
}
