//! The multi-core forwarding benchmark: RSS-sharded [`MtSwitch`]
//! workers vs. the single-threaded PR-3 [`Switch`] on the same batched
//! encap workload.
//!
//! Run with: `cargo bench -p sda-bench --bench mt_fwd`
//! Smoke mode (CI): `SDA_BENCH_SMOKE=1 cargo bench -p sda-bench --bench
//! mt_fwd` — tiny sample sizes, JSON goes to `target/`, and the perf
//! assertions are skipped (shared CI runners are too noisy to gate);
//! the schema assertion still runs so the emitter can't rot.
//!
//! Emits `BENCH_mt.json` at the workspace root. Schema:
//! `[{group, id, median_ns, mean_ns, p95_ns, iterations}]` under group
//! `mt_fwd`; **one iteration processes a burst of [`BURST`] packets**
//! (32 shuttle batches of 32 — divide `median_ns` by 1024 for ns/pkt;
//! pkts/s = 1e9 ÷ ns/pkt). Frames carry a 1400 B payload toward 10k
//! installed host routes, the same workload as
//! `BENCH_dataplane.json`'s `encap_batch32/10000`.
//!
//! Ids:
//! * `encap_st_batch32/10000` — the single-threaded [`Switch`] driven
//!   with 32-packet batches (the PR-3 engine, measured in-run so the
//!   parity ratio compares like with like).
//! * `encap_w{1,2,4}_batch32/10000` — the [`MtSwitch`] front with 1, 2
//!   and 4 workers: per-packet RSS on the inner flow hash, buffers
//!   swapped into per-worker 32-packet shuttles, verdicts returned in
//!   burst order.
//!
//! Acceptance bars (skipped in smoke mode):
//! * **Parity**: the 1-worker path must stay within 1.15x of the
//!   single-threaded switch per packet — the fan-out machinery (hash,
//!   swap, channel hop) must not tax the uniprocessor deployment.
//! * **Scaling**: 4 workers must be ≥ 2.5x faster than 1 worker.
//!   Thread parallelism needs hardware: this assertion arms only when
//!   `std::thread::available_parallelism()` reports ≥ 4 CPUs (the
//!   committed baseline's host is recorded in ROADMAP.md — regenerate
//!   on a multi-core box to exercise the bar).

use criterion::{black_box, BenchmarkId, Criterion};
use sda_dataplane::{LocalEndpoint, MtSwitch, PacketBuf, Switch, SwitchConfig, BATCH_SIZE};
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, EidPrefix, GroupId, MacAddr, PortId, Rloc, VnId};
use sda_wire::{ethernet, ipv4, EtherType};
use std::net::Ipv4Addr;

const ROUTES: u32 = 10_000;
/// Packets per measured iteration: 32 shuttle batches of [`BATCH_SIZE`].
const BURST: usize = 32 * BATCH_SIZE;
/// Pre-built distinct bursts cycled per iteration, so measurements
/// sweep the FIB instead of hammering one hot entry.
const PREBUILT_BURSTS: usize = 4;
const PAYLOAD: usize = 1400;
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn vn() -> VnId {
    VnId::new(7).unwrap()
}

fn remote_ip(i: u32) -> Ipv4Addr {
    Ipv4Addr::from(0x0A09_0000 | (i & 0x00FF_FFFF))
}

fn host() -> LocalEndpoint {
    LocalEndpoint {
        port: PortId(1),
        group: GroupId(10),
        mac: MacAddr::from_seed(1),
        ipv4: Ipv4Addr::new(10, 0, 0, 1),
    }
}

fn cfg() -> SwitchConfig {
    let mut cfg = SwitchConfig::new(Rloc::for_router_index(1));
    cfg.border = Some(Rloc::for_router_index(999));
    cfg.default_action = sda_policy::Action::Allow;
    cfg
}

/// A host frame from the attached endpoint toward `dst`.
fn frame(dst: Ipv4Addr) -> Vec<u8> {
    let h = host();
    let inner = ipv4::Repr {
        src: h.ipv4,
        dst,
        protocol: ipv4::Protocol::Unknown(253),
        payload_len: PAYLOAD,
        ttl: 64,
    };
    let mut buf = vec![0u8; ethernet::HEADER_LEN + inner.buffer_len()];
    ethernet::Repr {
        dst: MacAddr::BROADCAST,
        src: h.mac,
        ethertype: EtherType::Ipv4,
    }
    .emit(&mut ethernet::Frame::new_unchecked(&mut buf[..]));
    inner.emit(&mut ipv4::Packet::new_unchecked(
        &mut buf[ethernet::HEADER_LEN..],
    ));
    buf
}

/// `PREBUILT_BURSTS` bursts of `BURST` frames sweeping the FIB
/// (stride-97 walk, every destination a hit).
fn bursts() -> Vec<Vec<Vec<u8>>> {
    (0..PREBUILT_BURSTS)
        .map(|b| {
            (0..BURST)
                .map(|i| {
                    frame(remote_ip(
                        ((b * BURST + i) as u32).wrapping_mul(97) % ROUTES,
                    ))
                })
                .collect()
        })
        .collect()
}

fn populate_st() -> Switch {
    let mut sw = Switch::new(cfg());
    sw.attach(vn(), host());
    for i in 0..ROUTES {
        sw.install_mapping(
            vn(),
            EidPrefix::host(Eid::V4(remote_ip(i))),
            Rloc::for_router_index(2 + (i % 200) as u16),
            SimDuration::from_days(365),
            SimTime::ZERO,
        );
    }
    sw.compact_tables();
    sw
}

fn populate_mt(workers: usize) -> MtSwitch {
    let mut mt = MtSwitch::spawn(cfg(), workers);
    mt.attach(vn(), host());
    for i in 0..ROUTES {
        mt.install_mapping(
            vn(),
            EidPrefix::host(Eid::V4(remote_ip(i))),
            Rloc::for_router_index(2 + (i % 200) as u16),
            SimDuration::from_days(365),
            SimTime::ZERO,
        );
    }
    mt.compact_tables();
    // Population done: clone-and-swap once so the measured phase only
    // ever takes the wait-free epoch-check path.
    mt.publish();
    mt
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("mt_fwd");
    let now = SimTime::ZERO + SimDuration::from_secs(1);
    let bursts = bursts();

    // Single-threaded reference: the same 1024 packets per iteration,
    // processed as 32 batches of 32 on the PR-3 Switch.
    {
        let mut sw = populate_st();
        let mut bufs: Vec<PacketBuf> = (0..BURST).map(|_| PacketBuf::new()).collect();
        let mut which = 0usize;
        group.bench_with_input(
            BenchmarkId::new("encap_st_batch32", ROUTES),
            &ROUTES,
            |b, _| {
                b.iter(|| {
                    let burst = &bursts[which];
                    which = (which + 1) % PREBUILT_BURSTS;
                    for (buf, f) in bufs.iter_mut().zip(burst) {
                        buf.load(f);
                    }
                    for chunk in bufs.chunks_mut(BATCH_SIZE) {
                        black_box(sw.process_ingress(chunk, now));
                    }
                    sw.clear_punts();
                });
            },
        );
        let stats = sw.stats();
        assert_eq!(stats.forwarded, stats.rx, "every packet a FIB hit");
    }

    // The RSS-sharded front at 1, 2 and 4 workers.
    for workers in WORKER_COUNTS {
        let mut mt = populate_mt(workers);
        let mut bufs: Vec<PacketBuf> = (0..BURST).map(|_| PacketBuf::new()).collect();
        let mut which = 0usize;
        group.bench_with_input(
            BenchmarkId::new(format!("encap_w{workers}_batch32"), ROUTES),
            &ROUTES,
            |b, _| {
                b.iter(|| {
                    let burst = &bursts[which];
                    which = (which + 1) % PREBUILT_BURSTS;
                    for (buf, f) in bufs.iter_mut().zip(burst) {
                        buf.load(f);
                    }
                    black_box(mt.process_ingress(&mut bufs, now));
                    mt.clear_punts();
                });
            },
        );
        // Satellite: merged stats + per-worker arena diagnostics, the
        // way lpm_hot_path prints the trie layout.
        let stats = mt.stats();
        assert_eq!(stats.forwarded, stats.rx, "every packet a FIB hit");
        eprintln!(
            "mt_fwd w{workers}: merged stats {} batches, {} rx, {} forwarded",
            stats.batches, stats.rx, stats.forwarded
        );
        for (w, mem) in mt.worker_mem_stats().iter().enumerate() {
            eprintln!("mt_fwd w{workers} worker {w} tables: {mem}");
        }
    }

    group.finish();
}

fn main() {
    let smoke = std::env::var("SDA_BENCH_SMOKE").is_ok();
    let mut criterion = if smoke {
        Criterion::default()
            .sample_size(10)
            .measurement_time(std::time::Duration::from_millis(60))
            .warm_up_time(std::time::Duration::from_millis(20))
    } else {
        Criterion::default()
            .sample_size(40)
            .measurement_time(std::time::Duration::from_millis(600))
            .warm_up_time(std::time::Duration::from_millis(200))
    };
    bench(&mut criterion);

    let out = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_mt.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mt.json")
    };
    criterion.write_json(out).expect("write BENCH_mt.json");
    eprintln!("wrote {out}");

    // Schema guard (runs even in smoke mode).
    let results = criterion.results();
    let got: Vec<(&str, &str)> = results
        .iter()
        .map(|r| (r.group.as_str(), r.id.as_str()))
        .collect();
    let want = [
        ("mt_fwd", "encap_st_batch32/10000"),
        ("mt_fwd", "encap_w1_batch32/10000"),
        ("mt_fwd", "encap_w2_batch32/10000"),
        ("mt_fwd", "encap_w4_batch32/10000"),
    ];
    assert_eq!(got, want, "BENCH_mt.json schema drifted");

    let median = |id: &str| {
        results
            .iter()
            .find(|r| r.group == "mt_fwd" && r.id == id)
            .map(|r| r.median_ns)
            .expect("bench result present")
    };
    let per_pkt = |id: &str| median(id) / BURST as f64;
    let st = per_pkt("encap_st_batch32/10000");
    let w1 = per_pkt("encap_w1_batch32/10000");
    let w2 = per_pkt("encap_w2_batch32/10000");
    let w4 = per_pkt("encap_w4_batch32/10000");
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "encap ns/pkt: st {st:.0} | w1 {w1:.0} ({:.2}x st) | w2 {w2:.0} | w4 {w4:.0} \
         ({:.2}x w1, {:.2} Mpps) on {cpus} CPUs",
        w1 / st,
        w1 / w4,
        1e3 / w4,
    );

    if smoke {
        eprintln!("smoke mode: skipping the perf assertions");
        return;
    }
    // Parity bar: the fan-out machinery must not tax the 1-worker path
    // beyond 15% of the single-threaded engine.
    assert!(
        w1 / st <= 1.15,
        "1-worker MtSwitch exceeded the 1.15x parity bar vs the single-threaded \
         Switch: {:.2}x ({w1:.0} vs {st:.0} ns/pkt)",
        w1 / st
    );
    // Scaling bar: needs hardware parallelism to be measurable.
    if cpus >= 4 {
        assert!(
            w1 / w4 >= 2.5,
            "4-worker speedup fell below the 2.5x bar: {:.2}x ({w4:.0} vs {w1:.0} ns/pkt)",
            w1 / w4
        );
    } else {
        eprintln!(
            "only {cpus} CPU(s) available: the >=2.5x 4-worker scaling bar needs >=4 \
             CPUs and was not asserted (regenerate on a multi-core host)"
        );
    }
}
