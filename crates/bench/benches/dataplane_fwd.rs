//! The dataplane forwarding benchmark: batched zero-copy engine vs. the
//! per-packet Vec-assembling byte path the repo used before the engine
//! landed.
//!
//! Run with: `cargo bench -p sda-bench --bench dataplane_fwd`
//! Smoke mode (CI): `SDA_BENCH_SMOKE=1 cargo bench -p sda-bench --bench
//! dataplane_fwd` — tiny sample sizes, JSON goes to `target/`, and the
//! perf assertion is skipped (shared CI runners are too noisy to gate).
//!
//! Emits `BENCH_dataplane.json` at the workspace root. Schema:
//! `[{group, id, median_ns, mean_ns, p95_ns, iterations}]`, where one
//! *iteration* of every `*_batch32` entry processes **32 packets**
//! (divide by 32 for ns/pkt) and one iteration of the `single`/
//! `baseline` entries processes one.
//!
//! Measured surfaces, per FIB size where it matters:
//!
//! * `encap_batch32/{1k,10k,100k,1M}` — ingress hits: parse +
//!   classify + batched map-cache LPM + in-place VXLAN-GPO encap. The
//!   1M row is the metro-tier FIB (`ctrl_plane`'s endpoint count).
//! * `encap_single/10k` — the same engine called with 1-packet batches
//!   (what batching itself buys).
//! * `miss_batch32/10k` — every packet misses, rides the border default
//!   route and punts a Map-Request.
//! * `decap_batch32/10k` — egress: validate stack, enforce policy,
//!   in-place decap + delivery rewrite.
//! * `baseline_encap/10k` / `baseline_decap/10k` — the frozen
//!   pre-engine per-packet path (the `seed_baseline` module below, the
//!   same freezing discipline as `lpm_hot_path`): parse + classify +
//!   per-packet map-cache lookup, then the seed `encode_packet`
//!   algorithm — one heap `Vec` per layer, each copied into the next,
//!   full UDP checksum — and `decode_packet` for the reverse direction.
//!
//! Frames carry a near-MTU [`PAYLOAD`] (1400 B, the conventional
//! full-size data packet of dataplane benchmarking): that is where the
//! zero-copy design earns its keep — the engine moves start pointers
//! while the per-packet baseline re-copies the payload once per layer
//! and checksums it once more.
//!
//! Acceptance bars asserted below (non-smoke): batched engine encap
//! must be at least **2x** faster per packet than the per-packet
//! baseline, and at least **1.5x** faster than the committed PR-5
//! median now that the LPM descent rides the stride tables and the
//! widened lockstep window.

use criterion::{black_box, BenchmarkId, Criterion};
use sda_core::pipeline::{decode_packet, encode_packet};
use sda_core::{InnerPacket, OverlayPacket};
use sda_dataplane::{encap, LocalEndpoint, PacketBuf, Switch, SwitchConfig, BATCH_SIZE};
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, EidPrefix, GroupId, MacAddr, PortId, Rloc, VnId};
use sda_wire::{ethernet, ipv4, EtherType};
use std::net::Ipv4Addr;

const ROUTE_COUNTS: [u32; 4] = [1_000, 10_000, 100_000, 1_000_000];
const MID_ROUTES: u32 = 10_000;
/// Pre-built distinct batches cycled per iteration, so measurements
/// sweep the FIB instead of hammering one hot entry.
const PREBUILT_BATCHES: usize = 32;
const PAYLOAD: usize = 1400;

/// The committed PR-5 `encap_batch32/10000` median (BENCH_dataplane.json
/// as of the RSS-sharding PR) — whole-batch ns. The stride/lockstep
/// tentpole's acceptance bar: the batched encap path must beat it by at
/// least 1.5x, since its LPM descent now rides the stride tables and the
/// widened lane window.
const PR5_ENCAP_BATCH32_10K_NS: f64 = 9147.20;

fn vn() -> VnId {
    VnId::new(7).unwrap()
}

fn remote_ip(i: u32) -> Ipv4Addr {
    Ipv4Addr::from(0x0A09_0000 | (i & 0x00FF_FFFF))
}

fn host() -> LocalEndpoint {
    LocalEndpoint {
        port: PortId(1),
        group: GroupId(10),
        mac: MacAddr::from_seed(1),
        ipv4: Ipv4Addr::new(10, 0, 0, 1),
    }
}

fn build_switch(routes: u32) -> Switch {
    let mut cfg = SwitchConfig::new(Rloc::for_router_index(1));
    cfg.border = Some(Rloc::for_router_index(999));
    cfg.default_action = sda_policy::Action::Allow;
    let mut sw = Switch::new(cfg);
    sw.attach(vn(), host());
    for i in 0..routes {
        sw.install_mapping(
            vn(),
            EidPrefix::host(Eid::V4(remote_ip(i))),
            Rloc::for_router_index(2 + (i % 200) as u16),
            SimDuration::from_days(365),
            SimTime::ZERO,
        );
    }
    // Population done: re-lay the table arenas in DFS order (the
    // bulk-load hook the arena trie adds).
    sw.compact_tables();
    sw
}

/// A host frame from the attached endpoint toward `dst`.
fn frame(dst: Ipv4Addr) -> Vec<u8> {
    let h = host();
    let inner = ipv4::Repr {
        src: h.ipv4,
        dst,
        protocol: ipv4::Protocol::Unknown(253),
        payload_len: PAYLOAD,
        ttl: 64,
    };
    let mut buf = vec![0u8; ethernet::HEADER_LEN + inner.buffer_len()];
    ethernet::Repr {
        dst: MacAddr::BROADCAST,
        src: h.mac,
        ethertype: EtherType::Ipv4,
    }
    .emit(&mut ethernet::Frame::new_unchecked(&mut buf[..]));
    inner.emit(&mut ipv4::Packet::new_unchecked(
        &mut buf[ethernet::HEADER_LEN..],
    ));
    buf
}

/// `PREBUILT_BATCHES` batches of `BATCH_SIZE` frames toward
/// pseudo-random destinations drawn by `pick`.
fn frame_batches(pick: impl Fn(u32) -> Ipv4Addr) -> Vec<Vec<Vec<u8>>> {
    (0..PREBUILT_BATCHES)
        .map(|b| {
            (0..BATCH_SIZE)
                .map(|i| frame(pick((b * BATCH_SIZE + i) as u32)))
                .collect()
        })
        .collect()
}

/// Deterministic FIB sweep: stride-97 walk over the installed routes.
fn hit_dst(routes: u32) -> impl Fn(u32) -> Ipv4Addr {
    move |i| remote_ip(i.wrapping_mul(97) % routes)
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataplane_fwd");
    let now = SimTime::ZERO + SimDuration::from_secs(1);

    // Ingress hits across FIB sizes, batches of 32.
    for routes in ROUTE_COUNTS {
        let mut sw = build_switch(routes);
        let batches = frame_batches(hit_dst(routes));
        let mut bufs: Vec<PacketBuf> = (0..BATCH_SIZE).map(|_| PacketBuf::new()).collect();
        let mut which = 0usize;
        group.bench_with_input(
            BenchmarkId::new("encap_batch32", routes),
            &routes,
            |b, _| {
                b.iter(|| {
                    let batch = &batches[which];
                    which = (which + 1) % PREBUILT_BATCHES;
                    for (buf, f) in bufs.iter_mut().zip(batch) {
                        buf.load(f);
                    }
                    black_box(sw.process_ingress(&mut bufs, now));
                    sw.clear_punts();
                });
            },
        );
    }

    // The same engine driven one packet at a time (batching ablation).
    {
        let mut sw = build_switch(MID_ROUTES);
        let batches = frame_batches(hit_dst(MID_ROUTES));
        let mut bufs: Vec<PacketBuf> = vec![PacketBuf::new()];
        let (mut which, mut idx) = (0usize, 0usize);
        group.bench_with_input(
            BenchmarkId::new("encap_single", MID_ROUTES),
            &MID_ROUTES,
            |b, _| {
                b.iter(|| {
                    bufs[0].load(&batches[which][idx]);
                    idx += 1;
                    if idx == BATCH_SIZE {
                        idx = 0;
                        which = (which + 1) % PREBUILT_BATCHES;
                    }
                    black_box(sw.process_ingress(&mut bufs, now));
                    sw.clear_punts();
                });
            },
        );
    }

    // Ingress misses: ride the default route, punt Map-Requests.
    {
        let mut sw = build_switch(MID_ROUTES);
        let batches = frame_batches(|i| Ipv4Addr::from(0x0AFF_0000 | (i & 0xFFFF)));
        let mut bufs: Vec<PacketBuf> = (0..BATCH_SIZE).map(|_| PacketBuf::new()).collect();
        let mut which = 0usize;
        group.bench_with_input(
            BenchmarkId::new("miss_batch32", MID_ROUTES),
            &MID_ROUTES,
            |b, _| {
                b.iter(|| {
                    let batch = &batches[which];
                    which = (which + 1) % PREBUILT_BATCHES;
                    for (buf, f) in bufs.iter_mut().zip(batch) {
                        buf.load(f);
                    }
                    black_box(sw.process_ingress(&mut bufs, now));
                    sw.clear_punts();
                });
            },
        );
    }

    // Egress decap + delivery.
    {
        let mut sw = build_switch(MID_ROUTES);
        let h = host();
        let wires: Vec<Vec<Vec<u8>>> = (0..PREBUILT_BATCHES)
            .map(|b| {
                (0..BATCH_SIZE)
                    .map(|i| {
                        let src = remote_ip((b * BATCH_SIZE + i) as u32 % MID_ROUTES);
                        let inner = ipv4::Repr {
                            src,
                            dst: h.ipv4,
                            protocol: ipv4::Protocol::Unknown(253),
                            payload_len: PAYLOAD,
                            ttl: 64,
                        };
                        let mut w = vec![0u8; encap::UNDERLAY_OVERHEAD + inner.buffer_len()];
                        inner.emit(&mut ipv4::Packet::new_unchecked(
                            &mut w[encap::UNDERLAY_OVERHEAD..],
                        ));
                        encap::write_underlay(
                            &mut w,
                            &encap::EncapParams {
                                outer_src: Rloc::for_router_index(7),
                                outer_dst: Rloc::for_router_index(1),
                                vn: vn(),
                                group: GroupId(10),
                                policy_applied: false,
                                ttl: 8,
                                src_port: 50_000,
                                udp_checksum: encap::OuterChecksum::Zero,
                                inner_proto: encap::InnerProto::Ipv4,
                            },
                        )
                        .unwrap();
                        w
                    })
                    .collect()
            })
            .collect();
        let mut bufs: Vec<PacketBuf> = (0..BATCH_SIZE).map(|_| PacketBuf::new()).collect();
        let mut which = 0usize;
        group.bench_with_input(
            BenchmarkId::new("decap_batch32", MID_ROUTES),
            &MID_ROUTES,
            |b, _| {
                b.iter(|| {
                    let batch = &wires[which];
                    which = (which + 1) % PREBUILT_BATCHES;
                    for (buf, w) in bufs.iter_mut().zip(batch) {
                        buf.load(w);
                    }
                    black_box(sw.process_egress(&mut bufs, now));
                    sw.clear_punts();
                });
            },
        );
    }

    group.finish();
}

/// The frozen pre-engine per-packet forwarding path, kept in the bench
/// (not the library) so the speedup claim stays reproducible from one
/// command — the same discipline as `lpm_hot_path`'s `seed_baseline`.
mod seed_baseline {
    use super::*;
    use sda_dataplane::VrfTable;
    use sda_lisp::{CacheOutcome, MapCache};
    use sda_wire::{udp, vxlan};

    /// Forwards one host frame the way the repo did before the engine:
    /// parse and classify per packet, one map-cache lookup, then the
    /// seed `encode_packet` shape — every layer assembled in its own
    /// heap `Vec` and copied into the next, full UDP checksum.
    pub fn forward(
        vrf: &VrfTable,
        cache: &mut MapCache,
        self_rloc: Rloc,
        bytes: &[u8],
        now: SimTime,
    ) -> Vec<u8> {
        let eth = ethernet::Frame::new_checked(bytes).expect("valid frame");
        let (vn, src_ep) = vrf.classify(eth.src_addr()).expect("onboarded source");
        let src_group = src_ep.group;
        let ip = ipv4::Packet::new_checked(eth.payload()).expect("valid inner");
        assert_eq!(ip.src_addr(), src_ep.ipv4, "source guard");
        let CacheOutcome::Hit(to) = cache.lookup(vn, Eid::V4(ip.dst_addr()), now) else {
            panic!("installed route must hit");
        };

        // Layer 1: the inner packet, copied out of the frame.
        let inner: Vec<u8> = eth.payload()[..ip.total_len() as usize].to_vec();

        // Layer 2: VXLAN-GPO.
        let vx_repr = vxlan::Repr {
            vn,
            group: Some(src_group),
            policy_applied: false,
            dont_learn: false,
            inner_proto: vxlan::InnerProto::Ipv4,
            payload_len: inner.len(),
        };
        let mut vx = vec![0u8; vx_repr.buffer_len()];
        {
            let mut p = vxlan::Packet::new_unchecked(&mut vx[..]);
            vx_repr.emit(&mut p);
            p.payload_mut().copy_from_slice(&inner);
        }

        // Layer 3: UDP, checksummed over the whole datagram.
        let udp_repr = udp::Repr {
            src_port: 49152,
            dst_port: udp::VXLAN_PORT,
            payload_len: vx.len(),
        };
        let mut dgram = vec![0u8; udp_repr.buffer_len()];
        {
            let mut p = udp::Packet::new_unchecked(&mut dgram[..]);
            udp_repr.emit(&mut p);
            p.payload_mut().copy_from_slice(&vx);
            p.fill_checksum(self_rloc.addr(), to.addr());
        }

        // Layer 4: outer IPv4.
        let outer_repr = ipv4::Repr {
            src: self_rloc.addr(),
            dst: to.addr(),
            protocol: ipv4::Protocol::Udp,
            payload_len: dgram.len(),
            ttl: 8,
        };
        let mut outer = vec![0u8; outer_repr.buffer_len()];
        {
            let mut p = ipv4::Packet::new_unchecked(&mut outer[..]);
            outer_repr.emit(&mut p);
            p.payload_mut().copy_from_slice(&dgram);
        }
        outer
    }
}

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataplane_fwd");
    let now = SimTime::ZERO + SimDuration::from_secs(1);

    // Per-packet baseline: same frames, same tables, seed idiom.
    {
        let mut vrf = sda_dataplane::VrfTable::new();
        vrf.attach(vn(), host());
        let mut cache = sda_lisp::MapCache::new();
        for i in 0..MID_ROUTES {
            cache.install(
                vn(),
                EidPrefix::host(Eid::V4(remote_ip(i))),
                Rloc::for_router_index(2 + (i % 200) as u16),
                SimDuration::from_days(365),
                SimTime::ZERO,
            );
        }
        let batches = frame_batches(hit_dst(MID_ROUTES));
        let frames: Vec<&Vec<u8>> = batches.iter().flatten().collect();
        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::new("baseline_encap", MID_ROUTES),
            &MID_ROUTES,
            |b, _| {
                b.iter(|| {
                    let f = frames[i];
                    i = (i + 1) % frames.len();
                    black_box(seed_baseline::forward(
                        &vrf,
                        &mut cache,
                        Rloc::for_router_index(1),
                        f,
                        now,
                    ))
                });
            },
        );
    }

    // Per-packet decode baseline on bytes the engine would receive.
    {
        let h = host();
        let wires: Vec<Vec<u8>> = (0..PREBUILT_BATCHES * BATCH_SIZE)
            .map(|i| {
                let pkt = OverlayPacket {
                    vn: vn(),
                    src_group: GroupId(10),
                    policy_applied: false,
                    hops_left: 8,
                    origin: Rloc::for_router_index(7),
                    inner: InnerPacket {
                        src: Eid::V4(remote_ip(i as u32 % MID_ROUTES)),
                        dst: Eid::V4(h.ipv4),
                        payload_len: PAYLOAD as u16,
                        flow: i as u64,
                        track: false,
                    },
                };
                encode_packet(
                    Rloc::for_router_index(7),
                    Rloc::for_router_index(1),
                    &pkt,
                    encap::OuterChecksum::Full,
                )
                .unwrap()
            })
            .collect();
        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::new("baseline_decap", MID_ROUTES),
            &MID_ROUTES,
            |b, _| {
                b.iter(|| {
                    let w = &wires[i];
                    i = (i + 1) % wires.len();
                    black_box(decode_packet(w).unwrap())
                });
            },
        );
    }

    group.finish();
}

fn main() {
    let smoke = std::env::var("SDA_BENCH_SMOKE").is_ok();
    let mut criterion = if smoke {
        Criterion::default()
            .sample_size(10)
            .measurement_time(std::time::Duration::from_millis(60))
            .warm_up_time(std::time::Duration::from_millis(20))
    } else {
        Criterion::default()
            .sample_size(40)
            .measurement_time(std::time::Duration::from_millis(600))
            .warm_up_time(std::time::Duration::from_millis(200))
    };
    bench_engine(&mut criterion);
    bench_baseline(&mut criterion);

    let out = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_dataplane.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dataplane.json")
    };
    criterion
        .write_json(out)
        .expect("write BENCH_dataplane.json");
    eprintln!("wrote {out}");

    let results = criterion.results();
    let median = |id: &str| {
        results
            .iter()
            .find(|r| r.group == "dataplane_fwd" && r.id == id)
            .map(|r| r.median_ns)
            .expect("bench result present")
    };
    let per_pkt = |id: &str| median(id) / BATCH_SIZE as f64;

    let batch = per_pkt("encap_batch32/10000");
    let single = median("encap_single/10000");
    let baseline = median("baseline_encap/10000");
    let decap = per_pkt("decap_batch32/10000");
    let decap_baseline = median("baseline_decap/10000");
    eprintln!(
        "encap: batched {batch:.0} ns/pkt ({:.2} Mpps) vs single {single:.0} ns/pkt vs \
         per-packet baseline {baseline:.0} ns/pkt -> {:.1}x (batch), {:.1}x (single)",
        1e3 / batch,
        baseline / batch,
        baseline / single,
    );
    eprintln!(
        "decap: batched {decap:.0} ns/pkt ({:.2} Mpps) vs per-packet baseline \
         {decap_baseline:.0} ns/pkt -> {:.1}x",
        1e3 / decap,
        decap_baseline / decap,
    );

    let pr5_ratio = PR5_ENCAP_BATCH32_10K_NS / median("encap_batch32/10000");
    eprintln!(
        "encap batch vs committed PR-5 median: {pr5_ratio:.2}x ({:.0} ns -> {:.0} ns)",
        PR5_ENCAP_BATCH32_10K_NS,
        median("encap_batch32/10000")
    );

    if smoke {
        eprintln!("smoke mode: skipping the perf assertions");
        return;
    }
    // The PR-4 acceptance bar: batched engine encap at 10k routes must
    // be at least 2x the per-packet Vec-assembling baseline.
    assert!(
        baseline / batch >= 2.0,
        "batched encap fell below the 2x acceptance bar: {:.2}x",
        baseline / batch
    );
    // The PR-6 acceptance bar: the stride descent + widened lockstep
    // window must put batched encap at least 1.5x under the committed
    // PR-5 whole-batch median.
    assert!(
        pr5_ratio >= 1.5,
        "batched encap fell below the 1.5x bar vs the committed PR-5 median: {pr5_ratio:.2}x"
    );
}
