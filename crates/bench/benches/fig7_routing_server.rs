//! Fig. 7a/7b (Criterion): routing-server request and update latency as
//! a function of the number of configured routes.
//!
//! The paper's claim: "the delay is not dependent on the number of
//! routes" because the store is a Patricia trie whose cost depends on
//! key width, not entry count. We measure the real data structure at
//! 10 / 100 / 1,000 / 10,000 / 100,000 routes; the report should show
//! flat medians across the sweep.
//!
//! Run with: `cargo bench -p sda-bench --bench fig7_routing_server`
//! Smoke mode (CI): `SDA_BENCH_SMOKE=1 cargo bench -p sda-bench --bench
//! fig7_routing_server` — tiny sample sizes and JSON to `target/`, the
//! same wiring as the other benches, so CI executes this emitter too
//! (it was previously the only bench CI never ran). The sweep's JSON
//! goes to `target/BENCH_fig7[.smoke].json` in both modes — it is a
//! figure reproduction, not a committed regression baseline.

use criterion::{BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sda_lisp::MapServer;
use sda_simnet::SimTime;
use sda_types::{Eid, Rloc, VnId};
use sda_wire::lisp::Message;
use std::net::Ipv4Addr;

fn vn() -> VnId {
    VnId::new(100).unwrap()
}

/// Deterministic, distinct EIDs ("Each query requested or updated a
/// different route, in order to avoid optimizations due to intermediate
/// caches").
fn eid(i: u32) -> Eid {
    Eid::V4(Ipv4Addr::from(0x0A00_0000 | (i & 0x00FF_FFFF)))
}

fn preloaded_server(routes: u32) -> MapServer {
    let mut s = MapServer::new(Rloc::for_router_index(65_000));
    for i in 0..routes {
        s.handle(
            Message::MapRegister {
                nonce: u64::from(i),
                vn: vn(),
                eid: eid(i),
                rloc: Rloc::for_router_index((i % 200) as u16),
                ttl_secs: 0,
                want_notify: false,
            },
            SimTime::ZERO,
        );
    }
    // Registration storm done: re-lay the trie arenas in DFS order.
    s.compact();
    s
}

/// Fig. 7a: Map-Request service latency vs. configured routes.
fn bench_requests(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a_map_request");
    for routes in [10u32, 100, 1_000, 10_000, 100_000] {
        let mut server = preloaded_server(routes);
        let mut rng = SmallRng::seed_from_u64(7);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(routes), &routes, |b, _| {
            b.iter(|| {
                let i = rng.gen_range(0..routes);
                let out = server.handle(
                    Message::MapRequest {
                        nonce: u64::from(i),
                        smr: false,
                        vn: vn(),
                        eid: eid(i),
                        itr_rloc: Rloc::for_router_index(3),
                    },
                    SimTime::ZERO,
                );
                criterion::black_box(out)
            });
        });
    }
    group.finish();
}

/// Fig. 7b: Map-Register (update) service latency vs. configured routes.
fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7b_map_register");
    for routes in [10u32, 100, 1_000, 10_000, 100_000] {
        let mut server = preloaded_server(routes);
        let mut rng = SmallRng::seed_from_u64(8);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(routes), &routes, |b, _| {
            b.iter(|| {
                let i = rng.gen_range(0..routes);
                // Rotate the RLOC so every update really writes.
                let out = server.handle(
                    Message::MapRegister {
                        nonce: u64::from(i),
                        vn: vn(),
                        eid: eid(i),
                        rloc: Rloc::for_router_index(rng.gen_range(0..400)),
                        ttl_secs: 0,
                        want_notify: false,
                    },
                    SimTime::ZERO,
                );
                criterion::black_box(out)
            });
        });
    }
    group.finish();
}

/// Underlying structure: raw Patricia-trie lookups, the paper's cited
/// reason for the flatness.
fn bench_trie_lookup(c: &mut Criterion) {
    use sda_trie::EidTrie;
    use sda_types::EidPrefix;
    let mut group = c.benchmark_group("fig7_trie_lookup");
    for routes in [10u32, 100, 1_000, 10_000, 100_000] {
        let mut trie: EidTrie<u32> = EidTrie::new();
        for i in 0..routes {
            trie.insert(EidPrefix::host(eid(i)), i);
        }
        let mut rng = SmallRng::seed_from_u64(9);
        group.bench_with_input(BenchmarkId::from_parameter(routes), &routes, |b, _| {
            b.iter(|| {
                let i = rng.gen_range(0..routes);
                criterion::black_box(trie.lookup(&eid(i)))
            });
        });
    }
    group.finish();
}

fn main() {
    let smoke = std::env::var("SDA_BENCH_SMOKE").is_ok();
    let mut criterion = if smoke {
        Criterion::default()
            .sample_size(10)
            .measurement_time(std::time::Duration::from_millis(60))
            .warm_up_time(std::time::Duration::from_millis(20))
    } else {
        Criterion::default()
            .sample_size(60)
            .measurement_time(std::time::Duration::from_secs(3))
            .warm_up_time(std::time::Duration::from_secs(1))
    };
    bench_requests(&mut criterion);
    bench_updates(&mut criterion);
    bench_trie_lookup(&mut criterion);

    let out = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_fig7.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_fig7.json")
    };
    criterion.write_json(out).expect("write BENCH_fig7.json");
    eprintln!("wrote {out}");

    // Schema guard (runs even in smoke mode): three groups, five sweep
    // points each, so the emitter can't silently rot.
    let results = criterion.results();
    for group in [
        "fig7a_map_request",
        "fig7b_map_register",
        "fig7_trie_lookup",
    ] {
        let points: Vec<&str> = results
            .iter()
            .filter(|r| r.group == group)
            .map(|r| r.id.as_str())
            .collect();
        assert_eq!(
            points,
            ["10", "100", "1000", "10000", "100000"],
            "{group} sweep drifted"
        );
    }
    criterion.final_summary();
}
