//! The LPM hot path benchmark: trie longest-prefix match and map-cache
//! lookup, new (inline-key, zero-allocation, arena-compacted) vs. the
//! frozen seed implementation (Vec-backed bit strings, remove + insert
//! refresh).
//!
//! Run with: `cargo bench -p sda-bench --bench lpm_hot_path`
//! Smoke mode (CI): `SDA_BENCH_SMOKE=1 cargo bench -p sda-bench --bench
//! lpm_hot_path` — tiny sample sizes, JSON goes to `target/`, and the
//! perf assertions are skipped (shared CI runners are too noisy to
//! gate); the schema assertion still runs so the emitter can't rot.
//!
//! Emits `BENCH_lpm.json` at the workspace root — the machine-readable
//! baseline every later perf PR is compared against (see ROADMAP.md
//! "Benchmarks"). Schema: `[{group, id, median_ns, mean_ns, p95_ns,
//! iterations}]` — asserted below to carry exactly the PR-1 ids, so the
//! PR-1 → PR-3 trajectory stays comparable.
//!
//! The `seed_baseline` module below is a faithful, frozen copy of the
//! pre-refactor algorithms: `slice()` materializing a fresh `Vec<u8>` on
//! every trie step, and a cache lookup that refreshes `last_used` by
//! removing and re-inserting the entry. Keeping it in the bench (not the
//! library) lets the speedup claim stay reproducible from one command.
//!
//! The new-trie paths call `compact()` after population — the bulk-load
//! hook the arena layout (PR 3) adds — and print
//! [`sda_trie::MemStats`] so layout regressions are visible in bench
//! output.

use criterion::{black_box, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sda_lisp::MapCache;
use sda_simnet::{SimDuration, SimTime};
use sda_trie::EidTrie;
use sda_types::{Eid, EidPrefix, Rloc, VnId};
use std::net::Ipv4Addr;

const ROUTE_COUNTS: [u32; 3] = [1_000, 10_000, 100_000];
const CACHE_ROUTES: u32 = 10_000;

/// The committed PR-1 `trie_lpm new/100000` median (BENCH_lpm.json as
/// of the pointer-chasing layout). The arena tentpole's acceptance bar:
/// the compacted descent must beat it by at least 1.5x.
const PR1_NEW_100K_MEDIAN_NS: f64 = 537.78;

/// The exact `(group, id)` rows PR 1 committed, in emission order. The
/// bench asserts its output still carries precisely these, so the
/// `BENCH_lpm.json` schema (and the PR-1 → PR-3 trajectory) stays
/// comparable.
const EXPECTED_IDS: [(&str, &str); 10] = [
    ("trie_lpm", "new/1000"),
    ("trie_lpm", "new/10000"),
    ("trie_lpm", "new/100000"),
    ("trie_lpm", "seed/1000"),
    ("trie_lpm", "seed/10000"),
    ("trie_lpm", "seed/100000"),
    ("map_cache_lookup", "hit/10000"),
    ("map_cache_lookup", "miss/10000"),
    ("map_cache_lookup", "stale/10000"),
    ("map_cache_lookup", "seed_hit/10000"),
];

fn vn() -> VnId {
    VnId::new(7).unwrap()
}

/// Deterministic, distinct IPv4 EIDs.
fn eid(i: u32) -> Eid {
    Eid::V4(Ipv4Addr::from(0x0A00_0000 | (i & 0x00FF_FFFF)))
}

/// The seed (pre-refactor) trie + cache-lookup algorithms, frozen for
/// comparison.
mod seed_baseline {
    use super::*;

    /// Vec-backed bit string, as the seed had it.
    #[derive(Clone, PartialEq, Eq, Default)]
    pub struct VecBits {
        bytes: Vec<u8>,
        len: usize,
    }

    impl VecBits {
        pub fn empty() -> Self {
            VecBits::default()
        }

        pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
            assert!(len <= bytes.len() * 8);
            let nbytes = len.div_ceil(8);
            let mut v = bytes[..nbytes].to_vec();
            let spare = nbytes * 8 - len;
            if spare > 0 {
                if let Some(last) = v.last_mut() {
                    *last &= 0xffu8 << spare;
                }
            }
            VecBits { bytes: v, len }
        }

        pub fn len(&self) -> usize {
            self.len
        }

        pub fn bit(&self, i: usize) -> bool {
            (self.bytes[i / 8] >> (7 - (i % 8))) & 1 == 1
        }

        /// The seed's bit-at-a-time slice: a fresh heap Vec per call.
        pub fn slice(&self, start: usize, end: usize) -> VecBits {
            let mut out = VecBits {
                bytes: Vec::with_capacity((end - start).div_ceil(8)),
                len: 0,
            };
            for i in start..end {
                out.push(self.bit(i));
            }
            out
        }

        pub fn push(&mut self, bit: bool) {
            if self.len.is_multiple_of(8) {
                self.bytes.push(0);
            }
            if bit {
                let idx = self.len / 8;
                self.bytes[idx] |= 1 << (7 - (self.len % 8));
            }
            self.len += 1;
        }

        /// The seed's comparison, including its byte-at-a-time fast path
        /// (the seed was not bit-at-a-time here — only `slice` was).
        pub fn common_prefix_len(&self, other: &VecBits) -> usize {
            let max = self.len.min(other.len);
            let full_bytes = max / 8;
            let mut i = 0;
            while i < full_bytes {
                let x = self.bytes[i] ^ other.bytes[i];
                if x != 0 {
                    return i * 8 + x.leading_zeros() as usize;
                }
                i += 1;
            }
            let mut bits = full_bytes * 8;
            while bits < max && self.bit(bits) == other.bit(bits) {
                bits += 1;
            }
            bits
        }

        pub fn is_prefix_of(&self, other: &VecBits) -> bool {
            self.len <= other.len && self.common_prefix_len(other) == self.len
        }

        /// The seed's bit-at-a-time concatenation (used by remove's merge).
        pub fn concat(&self, other: &VecBits) -> VecBits {
            let mut out = self.clone();
            for i in 0..other.len {
                out.push(other.bit(i));
            }
            out
        }
    }

    struct Node<V> {
        label: VecBits,
        value: Option<V>,
        children: [Option<Box<Node<V>>>; 2],
    }

    pub struct VecTrie<V> {
        root: Node<V>,
    }

    impl<V> VecTrie<V> {
        pub fn new() -> Self {
            VecTrie {
                root: Node {
                    label: VecBits::empty(),
                    value: None,
                    children: [None, None],
                },
            }
        }

        pub fn insert(&mut self, key: &VecBits, value: V) -> Option<V> {
            Self::insert_at(&mut self.root, key, 0, value)
        }

        fn insert_at(node: &mut Node<V>, key: &VecBits, depth: usize, value: V) -> Option<V> {
            let after_label = depth + node.label.len();
            if after_label == key.len() {
                return node.value.replace(value);
            }
            let next_bit = key.bit(after_label) as usize;
            match &mut node.children[next_bit] {
                None => {
                    let label = key.slice(after_label, key.len());
                    node.children[next_bit] = Some(Box::new(Node {
                        label,
                        value: Some(value),
                        children: [None, None],
                    }));
                    None
                }
                Some(child) => {
                    let rest = key.slice(after_label, key.len());
                    let common = child.label.common_prefix_len(&rest);
                    if common == child.label.len() {
                        Self::insert_at(child, key, after_label, value)
                    } else {
                        let mut old = node.children[next_bit].take().unwrap();
                        let parent_label = old.label.slice(0, common);
                        let child_label = old.label.slice(common, old.label.len());
                        let bit = child_label.bit(0) as usize;
                        old.label = child_label;
                        let mut split = Box::new(Node {
                            label: parent_label,
                            value: None,
                            children: [None, None],
                        });
                        split.children[bit] = Some(old);
                        if common == rest.len() {
                            split.value = Some(value);
                        } else {
                            let b = rest.bit(common) as usize;
                            let label = rest.slice(common, rest.len());
                            split.children[b] = Some(Box::new(Node {
                                label,
                                value: Some(value),
                                children: [None, None],
                            }));
                        }
                        node.children[next_bit] = Some(split);
                        None
                    }
                }
            }
        }

        /// The seed's longest_match: a heap-allocating `slice()` per step.
        pub fn longest_match(&self, key: &VecBits) -> Option<(usize, &V)> {
            let mut node = &self.root;
            let mut depth = 0usize;
            let mut best: Option<(usize, &V)> = node.value.as_ref().map(|v| (0, v));
            loop {
                if depth == key.len() {
                    return best;
                }
                let bit = key.bit(depth) as usize;
                let Some(child) = node.children[bit].as_ref() else {
                    return best;
                };
                let rest = key.slice(depth, key.len());
                if !child.label.is_prefix_of(&rest) {
                    return best;
                }
                depth += child.label.len();
                node = child;
                if let Some(v) = node.value.as_ref() {
                    best = Some((depth, v));
                }
            }
        }

        pub fn remove(&mut self, key: &VecBits) -> Option<V> {
            Self::remove_at(&mut self.root, key, 0)
        }

        fn remove_at(node: &mut Node<V>, key: &VecBits, depth: usize) -> Option<V> {
            if depth == key.len() {
                return node.value.take();
            }
            let bit = key.bit(depth) as usize;
            let child = node.children[bit].as_mut()?;
            let rest = key.slice(depth, key.len());
            if !child.label.is_prefix_of(&rest) {
                return None;
            }
            let child_depth = depth + child.label.len();
            let removed = Self::remove_at(child, key, child_depth)?;
            // Re-establish compression on the way out, as the seed did:
            // prune empty leaves AND merge single-child pass-throughs.
            let child_ref = node.children[bit].as_mut().unwrap();
            if child_ref.value.is_none() {
                let child_count = child_ref.children.iter().filter(|c| c.is_some()).count();
                match child_count {
                    0 => {
                        node.children[bit] = None;
                    }
                    1 => {
                        let mut child_box = node.children[bit].take().unwrap();
                        let mut gc = child_box
                            .children
                            .iter_mut()
                            .find_map(Option::take)
                            .expect("child_count said 1");
                        gc.label = child_box.label.concat(&gc.label);
                        node.children[bit] = Some(gc);
                    }
                    _ => {}
                }
            }
            Some(removed)
        }
    }

    /// Seed-style cache entry. `last_used` is written on every refresh
    /// (the whole point of the remove + insert dance being measured) but
    /// never read back in the bench.
    #[derive(Clone, Copy)]
    pub struct SeedEntry {
        pub rloc: Rloc,
        pub expires_at: SimTime,
        #[allow(dead_code)]
        pub last_used: SimTime,
        pub stale: bool,
    }

    pub fn v4_key(e: &Eid) -> VecBits {
        match e {
            Eid::V4(a) => VecBits::from_bytes(&a.octets(), 32),
            _ => unreachable!("bench uses IPv4 EIDs only"),
        }
    }

    /// The seed `MapCache::lookup` dance: find, copy out, remove,
    /// re-insert with the refreshed `last_used`. Returns the RLOC and the
    /// stale flag (the seed's Hit/Stale outcome split).
    pub fn seed_lookup(
        trie: &mut VecTrie<SeedEntry>,
        e: &Eid,
        now: SimTime,
    ) -> Option<(Rloc, bool)> {
        let key = v4_key(e);
        let (len, entry) = trie.longest_match(&key).map(|(l, v)| (l, *v))?;
        let prefix = key.slice(0, len);
        if now >= entry.expires_at {
            trie.remove(&prefix);
            return None;
        }
        let updated = SeedEntry {
            last_used: now,
            ..entry
        };
        trie.remove(&prefix);
        trie.insert(&prefix, updated);
        Some((entry.rloc, entry.stale))
    }
}

fn bench_trie_lpm(c: &mut Criterion) {
    let mut group = c.benchmark_group("trie_lpm");
    for routes in ROUTE_COUNTS {
        let mut trie: EidTrie<u32> = EidTrie::new();
        for i in 0..routes {
            trie.insert(EidPrefix::host(eid(i)), i);
        }
        // Bulk load done: re-lay the arena in DFS order (the hook the
        // production population paths call).
        trie.compact();
        eprintln!("trie_lpm new/{routes} layout: {}", trie.mem_stats());
        let mut rng = SmallRng::seed_from_u64(11);
        group.bench_with_input(BenchmarkId::new("new", routes), &routes, |b, _| {
            b.iter(|| {
                let i = rng.gen_range(0..routes);
                black_box(trie.lookup(&eid(i)))
            });
        });
    }
    for routes in ROUTE_COUNTS {
        let mut trie: seed_baseline::VecTrie<u32> = seed_baseline::VecTrie::new();
        for i in 0..routes {
            trie.insert(&seed_baseline::v4_key(&eid(i)), i);
        }
        let mut rng = SmallRng::seed_from_u64(11);
        group.bench_with_input(BenchmarkId::new("seed", routes), &routes, |b, _| {
            b.iter(|| {
                let i = rng.gen_range(0..routes);
                black_box(trie.longest_match(&seed_baseline::v4_key(&eid(i))))
            });
        });
    }
    group.finish();
}

fn bench_map_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_cache_lookup");
    let ttl = SimDuration::from_days(365);
    let now = SimTime::ZERO + SimDuration::from_secs(60);

    // Hit: every probed EID is cached and fresh.
    let mut cache = MapCache::new();
    for i in 0..CACHE_ROUTES {
        cache.install(
            vn(),
            EidPrefix::host(eid(i)),
            Rloc::for_router_index((i % 200) as u16),
            ttl,
            SimTime::ZERO,
        );
    }
    cache.compact();
    eprintln!("map_cache hit/{CACHE_ROUTES} layout: {}", cache.mem_stats());
    let mut rng = SmallRng::seed_from_u64(12);
    group.bench_with_input(BenchmarkId::new("hit", CACHE_ROUTES), &(), |b, _| {
        b.iter(|| {
            let i = rng.gen_range(0..CACHE_ROUTES);
            black_box(cache.lookup(vn(), eid(i), now))
        });
    });

    // Miss: probes outside the installed range (no entry, no mutation).
    let mut rng = SmallRng::seed_from_u64(13);
    group.bench_with_input(BenchmarkId::new("miss", CACHE_ROUTES), &(), |b, _| {
        b.iter(|| {
            let i = CACHE_ROUTES + rng.gen_range(0..CACHE_ROUTES);
            black_box(cache.lookup(vn(), eid(i), now))
        });
    });

    // Stale: every entry SMR'd; lookups return Stale, refreshing in place.
    let mut stale_cache = MapCache::new();
    for i in 0..CACHE_ROUTES {
        stale_cache.install(
            vn(),
            EidPrefix::host(eid(i)),
            Rloc::for_router_index((i % 200) as u16),
            ttl,
            SimTime::ZERO,
        );
        stale_cache.mark_stale(vn(), eid(i), SimTime::ZERO);
    }
    stale_cache.compact();
    let mut rng = SmallRng::seed_from_u64(14);
    group.bench_with_input(BenchmarkId::new("stale", CACHE_ROUTES), &(), |b, _| {
        b.iter(|| {
            let i = rng.gen_range(0..CACHE_ROUTES);
            black_box(stale_cache.lookup(vn(), eid(i), now))
        });
    });

    // Seed baseline hit: remove + insert refresh on the Vec-backed trie.
    let mut seed_trie: seed_baseline::VecTrie<seed_baseline::SeedEntry> =
        seed_baseline::VecTrie::new();
    for i in 0..CACHE_ROUTES {
        seed_trie.insert(
            &seed_baseline::v4_key(&eid(i)),
            seed_baseline::SeedEntry {
                rloc: Rloc::for_router_index((i % 200) as u16),
                expires_at: SimTime::ZERO + ttl,
                last_used: SimTime::ZERO,
                stale: false,
            },
        );
    }
    let mut rng = SmallRng::seed_from_u64(12);
    group.bench_with_input(BenchmarkId::new("seed_hit", CACHE_ROUTES), &(), |b, _| {
        b.iter(|| {
            let i = rng.gen_range(0..CACHE_ROUTES);
            black_box(seed_baseline::seed_lookup(&mut seed_trie, &eid(i), now))
        });
    });

    group.finish();
}

fn main() {
    let smoke = std::env::var("SDA_BENCH_SMOKE").is_ok();
    let mut criterion = if smoke {
        Criterion::default()
            .sample_size(10)
            .measurement_time(std::time::Duration::from_millis(60))
            .warm_up_time(std::time::Duration::from_millis(20))
    } else {
        Criterion::default()
            .sample_size(40)
            .measurement_time(std::time::Duration::from_millis(600))
            .warm_up_time(std::time::Duration::from_millis(200))
    };
    bench_trie_lpm(&mut criterion);
    bench_map_cache(&mut criterion);

    let out = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_lpm.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lpm.json")
    };
    criterion.write_json(out).expect("write BENCH_lpm.json");
    eprintln!("wrote {out}");

    // Schema guard (runs even in smoke mode): exactly the PR-1 rows, in
    // the PR-1 order, so committed BENCH_lpm.json files stay comparable
    // across the PR-1 → PR-3 trajectory.
    let results = criterion.results();
    let got: Vec<(&str, &str)> = results
        .iter()
        .map(|r| (r.group.as_str(), r.id.as_str()))
        .collect();
    assert_eq!(got, EXPECTED_IDS, "BENCH_lpm.json schema drifted from PR 1");

    let median = |group: &str, id: &str| {
        results
            .iter()
            .find(|r| r.group == group && r.id == id)
            .map(|r| r.median_ns)
            .expect("bench result present")
    };
    let new_hit = median("map_cache_lookup", "hit/10000");
    let seed_hit = median("map_cache_lookup", "seed_hit/10000");
    let new_100k = median("trie_lpm", "new/100000");
    eprintln!(
        "map-cache hit speedup vs seed: {:.1}x ({:.0} ns -> {:.0} ns)",
        seed_hit / new_hit,
        seed_hit,
        new_hit
    );
    eprintln!(
        "trie LPM 100k speedup vs PR-1 layout: {:.2}x ({:.0} ns committed -> {:.0} ns)",
        PR1_NEW_100K_MEDIAN_NS / new_100k,
        PR1_NEW_100K_MEDIAN_NS,
        new_100k
    );
    if smoke {
        eprintln!("smoke mode: skipping the perf assertions");
        return;
    }
    // The PR-1 acceptance bar: new map-cache hit lookup at 10k routes
    // must be at least 2x faster than the seed algorithm.
    assert!(
        seed_hit / new_hit >= 2.0,
        "map-cache hit regressed below the 2x acceptance bar: {:.1}x",
        seed_hit / new_hit
    );
    // The PR-3 acceptance bar: the arena-compacted descent at 100k
    // routes must be at least 1.5x faster than the committed PR-1
    // pointer-chasing median.
    assert!(
        PR1_NEW_100K_MEDIAN_NS / new_100k >= 1.5,
        "arena trie fell below the 1.5x bar vs PR 1: {:.2}x ({new_100k:.0} ns)",
        PR1_NEW_100K_MEDIAN_NS / new_100k
    );
}
