//! The LPM hot path benchmark: trie longest-prefix match and map-cache
//! lookup, new (inline-key, zero-allocation, arena-compacted) vs. the
//! frozen seed implementation (Vec-backed bit strings, remove + insert
//! refresh).
//!
//! Run with: `cargo bench -p sda-bench --bench lpm_hot_path`
//! Smoke mode (CI): `SDA_BENCH_SMOKE=1 cargo bench -p sda-bench --bench
//! lpm_hot_path` — tiny sample sizes, JSON goes to `target/`, and the
//! perf assertions are skipped (shared CI runners are too noisy to
//! gate); the schema assertion still runs so the emitter can't rot.
//!
//! Emits `BENCH_lpm.json` at the workspace root — the machine-readable
//! baseline every later perf PR is compared against (see ROADMAP.md
//! "Benchmarks"). Schema: `[{group, id, median_ns, mean_ns, p95_ns,
//! iterations}]` — asserted below to carry exactly this PR's ids with
//! the original PR-1 rows surviving as a subsequence, so the
//! PR-1 → PR-3 → PR-6 trajectory stays comparable. New in the stride
//! PR: the 1M-route scale tier (trie + map-cache, with `MemStats`
//! memory budgets asserted), the frozen PR-3 `arena3` descent (the
//! stride speedup's in-run comparison point) and a lockstep lane sweep
//! (32 vs. 64 lanes).
//!
//! The `seed_baseline` module below is a faithful, frozen copy of the
//! pre-refactor algorithms: `slice()` materializing a fresh `Vec<u8>` on
//! every trie step, and a cache lookup that refreshes `last_used` by
//! removing and re-inserting the entry. Keeping it in the bench (not the
//! library) lets the speedup claim stay reproducible from one command.
//!
//! The new-trie paths call `compact()` after population — the bulk-load
//! hook the arena layout (PR 3) adds — and print
//! [`sda_trie::MemStats`] so layout regressions are visible in bench
//! output.

use criterion::{black_box, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sda_lisp::MapCache;
use sda_simnet::{SimDuration, SimTime};
use sda_trie::EidTrie;
use sda_types::{Eid, EidPrefix, Rloc, VnId};
use std::net::Ipv4Addr;

/// Counts the seed baseline still runs at (building the Vec-backed seed
/// trie at 1M routes takes minutes — not worth the wait for a baseline
/// whose curve three committed JSONs already document).
const ROUTE_COUNTS: [u32; 3] = [1_000, 10_000, 100_000];
/// Counts for the stride trie, including the million-route scale tier
/// the stride layer makes affordable.
const NEW_ROUTE_COUNTS: [u32; 4] = [1_000, 10_000, 100_000, 1_000_000];
const CACHE_ROUTES: u32 = 10_000;
const CACHE_ROUTES_1M: u32 = 1_000_000;
/// Keys per lockstep batch in the lane-sweep rows.
const BATCH_KEYS: usize = 1_024;

/// The committed PR-1 `trie_lpm new/100000` median (BENCH_lpm.json as
/// of the pointer-chasing layout). The arena tentpole's acceptance bar:
/// the compacted descent must beat it by at least 1.5x.
const PR1_NEW_100K_MEDIAN_NS: f64 = 537.78;

/// Memory budget for the 1M-route trie (ROADMAP scale-tier item: ~2x a
/// 64 MiB last-level cache). Asserted against `MemStats` even in smoke
/// mode — layout is deterministic, no timing noise involved.
const TRIE_1M_BUDGET_BYTES: usize = 128 * 1024 * 1024;

/// Budget for the 1M-entry map-cache. Wider than the bare trie's: the
/// value slab holds whole `CacheEntry` records (RLOC + TTL + LRU
/// bookkeeping) instead of a `u32`, roughly doubling bytes per route.
const CACHE_1M_BUDGET_BYTES: usize = 192 * 1024 * 1024;

/// The exact `(group, id)` rows this PR commits, in emission order. The
/// ten PR-1 rows survive as a subsequence (asserted separately below),
/// so the PR-1 → PR-3 → PR-6 trajectory stays comparable; the stride PR
/// adds the 1M scale tier, the frozen PR-3 arena point and the lockstep
/// lane sweep.
const EXPECTED_IDS: [(&str, &str); 15] = [
    ("trie_lpm", "new/1000"),
    ("trie_lpm", "new/10000"),
    ("trie_lpm", "new/100000"),
    ("trie_lpm", "new/1000000"),
    ("trie_lpm", "arena3/100000"),
    ("trie_lpm", "seed/1000"),
    ("trie_lpm", "seed/10000"),
    ("trie_lpm", "seed/100000"),
    ("trie_lpm_batch", "lanes32/100000"),
    ("trie_lpm_batch", "lanes64/100000"),
    ("map_cache_lookup", "hit/10000"),
    ("map_cache_lookup", "miss/10000"),
    ("map_cache_lookup", "stale/10000"),
    ("map_cache_lookup", "seed_hit/10000"),
    ("map_cache_lookup", "hit/1000000"),
];

/// The PR-1 rows, which must survive verbatim (same group, same id) so
/// committed BENCH_lpm.json files stay comparable across PRs.
const PR1_IDS: [(&str, &str); 10] = [
    ("trie_lpm", "new/1000"),
    ("trie_lpm", "new/10000"),
    ("trie_lpm", "new/100000"),
    ("trie_lpm", "seed/1000"),
    ("trie_lpm", "seed/10000"),
    ("trie_lpm", "seed/100000"),
    ("map_cache_lookup", "hit/10000"),
    ("map_cache_lookup", "miss/10000"),
    ("map_cache_lookup", "stale/10000"),
    ("map_cache_lookup", "seed_hit/10000"),
];

fn vn() -> VnId {
    VnId::new(7).unwrap()
}

/// Deterministic, distinct IPv4 EIDs.
fn eid(i: u32) -> Eid {
    Eid::V4(Ipv4Addr::from(0x0A00_0000 | (i & 0x00FF_FFFF)))
}

/// The seed (pre-refactor) trie + cache-lookup algorithms, frozen for
/// comparison.
mod seed_baseline {
    use super::*;

    /// Vec-backed bit string, as the seed had it.
    #[derive(Clone, PartialEq, Eq, Default)]
    pub struct VecBits {
        bytes: Vec<u8>,
        len: usize,
    }

    impl VecBits {
        pub fn empty() -> Self {
            VecBits::default()
        }

        pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
            assert!(len <= bytes.len() * 8);
            let nbytes = len.div_ceil(8);
            let mut v = bytes[..nbytes].to_vec();
            let spare = nbytes * 8 - len;
            if spare > 0 {
                if let Some(last) = v.last_mut() {
                    *last &= 0xffu8 << spare;
                }
            }
            VecBits { bytes: v, len }
        }

        pub fn len(&self) -> usize {
            self.len
        }

        pub fn bit(&self, i: usize) -> bool {
            (self.bytes[i / 8] >> (7 - (i % 8))) & 1 == 1
        }

        /// The seed's bit-at-a-time slice: a fresh heap Vec per call.
        pub fn slice(&self, start: usize, end: usize) -> VecBits {
            let mut out = VecBits {
                bytes: Vec::with_capacity((end - start).div_ceil(8)),
                len: 0,
            };
            for i in start..end {
                out.push(self.bit(i));
            }
            out
        }

        pub fn push(&mut self, bit: bool) {
            if self.len.is_multiple_of(8) {
                self.bytes.push(0);
            }
            if bit {
                let idx = self.len / 8;
                self.bytes[idx] |= 1 << (7 - (self.len % 8));
            }
            self.len += 1;
        }

        /// The seed's comparison, including its byte-at-a-time fast path
        /// (the seed was not bit-at-a-time here — only `slice` was).
        pub fn common_prefix_len(&self, other: &VecBits) -> usize {
            let max = self.len.min(other.len);
            let full_bytes = max / 8;
            let mut i = 0;
            while i < full_bytes {
                let x = self.bytes[i] ^ other.bytes[i];
                if x != 0 {
                    return i * 8 + x.leading_zeros() as usize;
                }
                i += 1;
            }
            let mut bits = full_bytes * 8;
            while bits < max && self.bit(bits) == other.bit(bits) {
                bits += 1;
            }
            bits
        }

        pub fn is_prefix_of(&self, other: &VecBits) -> bool {
            self.len <= other.len && self.common_prefix_len(other) == self.len
        }

        /// The seed's bit-at-a-time concatenation (used by remove's merge).
        pub fn concat(&self, other: &VecBits) -> VecBits {
            let mut out = self.clone();
            for i in 0..other.len {
                out.push(other.bit(i));
            }
            out
        }
    }

    struct Node<V> {
        label: VecBits,
        value: Option<V>,
        children: [Option<Box<Node<V>>>; 2],
    }

    pub struct VecTrie<V> {
        root: Node<V>,
    }

    impl<V> VecTrie<V> {
        pub fn new() -> Self {
            VecTrie {
                root: Node {
                    label: VecBits::empty(),
                    value: None,
                    children: [None, None],
                },
            }
        }

        pub fn insert(&mut self, key: &VecBits, value: V) -> Option<V> {
            Self::insert_at(&mut self.root, key, 0, value)
        }

        fn insert_at(node: &mut Node<V>, key: &VecBits, depth: usize, value: V) -> Option<V> {
            let after_label = depth + node.label.len();
            if after_label == key.len() {
                return node.value.replace(value);
            }
            let next_bit = key.bit(after_label) as usize;
            match &mut node.children[next_bit] {
                None => {
                    let label = key.slice(after_label, key.len());
                    node.children[next_bit] = Some(Box::new(Node {
                        label,
                        value: Some(value),
                        children: [None, None],
                    }));
                    None
                }
                Some(child) => {
                    let rest = key.slice(after_label, key.len());
                    let common = child.label.common_prefix_len(&rest);
                    if common == child.label.len() {
                        Self::insert_at(child, key, after_label, value)
                    } else {
                        let mut old = node.children[next_bit].take().unwrap();
                        let parent_label = old.label.slice(0, common);
                        let child_label = old.label.slice(common, old.label.len());
                        let bit = child_label.bit(0) as usize;
                        old.label = child_label;
                        let mut split = Box::new(Node {
                            label: parent_label,
                            value: None,
                            children: [None, None],
                        });
                        split.children[bit] = Some(old);
                        if common == rest.len() {
                            split.value = Some(value);
                        } else {
                            let b = rest.bit(common) as usize;
                            let label = rest.slice(common, rest.len());
                            split.children[b] = Some(Box::new(Node {
                                label,
                                value: Some(value),
                                children: [None, None],
                            }));
                        }
                        node.children[next_bit] = Some(split);
                        None
                    }
                }
            }
        }

        /// The seed's longest_match: a heap-allocating `slice()` per step.
        pub fn longest_match(&self, key: &VecBits) -> Option<(usize, &V)> {
            let mut node = &self.root;
            let mut depth = 0usize;
            let mut best: Option<(usize, &V)> = node.value.as_ref().map(|v| (0, v));
            loop {
                if depth == key.len() {
                    return best;
                }
                let bit = key.bit(depth) as usize;
                let Some(child) = node.children[bit].as_ref() else {
                    return best;
                };
                let rest = key.slice(depth, key.len());
                if !child.label.is_prefix_of(&rest) {
                    return best;
                }
                depth += child.label.len();
                node = child;
                if let Some(v) = node.value.as_ref() {
                    best = Some((depth, v));
                }
            }
        }

        pub fn remove(&mut self, key: &VecBits) -> Option<V> {
            Self::remove_at(&mut self.root, key, 0)
        }

        fn remove_at(node: &mut Node<V>, key: &VecBits, depth: usize) -> Option<V> {
            if depth == key.len() {
                return node.value.take();
            }
            let bit = key.bit(depth) as usize;
            let child = node.children[bit].as_mut()?;
            let rest = key.slice(depth, key.len());
            if !child.label.is_prefix_of(&rest) {
                return None;
            }
            let child_depth = depth + child.label.len();
            let removed = Self::remove_at(child, key, child_depth)?;
            // Re-establish compression on the way out, as the seed did:
            // prune empty leaves AND merge single-child pass-throughs.
            let child_ref = node.children[bit].as_mut().unwrap();
            if child_ref.value.is_none() {
                let child_count = child_ref.children.iter().filter(|c| c.is_some()).count();
                match child_count {
                    0 => {
                        node.children[bit] = None;
                    }
                    1 => {
                        let mut child_box = node.children[bit].take().unwrap();
                        let mut gc = child_box
                            .children
                            .iter_mut()
                            .find_map(Option::take)
                            .expect("child_count said 1");
                        gc.label = child_box.label.concat(&gc.label);
                        node.children[bit] = Some(gc);
                    }
                    _ => {}
                }
            }
            Some(removed)
        }
    }

    /// Seed-style cache entry. `last_used` is written on every refresh
    /// (the whole point of the remove + insert dance being measured) but
    /// never read back in the bench.
    #[derive(Clone, Copy)]
    pub struct SeedEntry {
        pub rloc: Rloc,
        pub expires_at: SimTime,
        #[allow(dead_code)]
        pub last_used: SimTime,
        pub stale: bool,
    }

    pub fn v4_key(e: &Eid) -> VecBits {
        match e {
            Eid::V4(a) => VecBits::from_bytes(&a.octets(), 32),
            _ => unreachable!("bench uses IPv4 EIDs only"),
        }
    }

    /// The seed `MapCache::lookup` dance: find, copy out, remove,
    /// re-insert with the refreshed `last_used`. Returns the RLOC and the
    /// stale flag (the seed's Hit/Stale outcome split).
    pub fn seed_lookup(
        trie: &mut VecTrie<SeedEntry>,
        e: &Eid,
        now: SimTime,
    ) -> Option<(Rloc, bool)> {
        let key = v4_key(e);
        let (len, entry) = trie.longest_match(&key).map(|(l, v)| (l, *v))?;
        let prefix = key.slice(0, len);
        if now >= entry.expires_at {
            trie.remove(&prefix);
            return None;
        }
        let updated = SeedEntry {
            last_used: now,
            ..entry
        };
        trie.remove(&prefix);
        trie.insert(&prefix, updated);
        Some((entry.rloc, entry.stale))
    }
}

/// The PR-3 arena descent, frozen at commit `184a049` for comparison:
/// identical 32-byte node layout, XOR-shift label compare and both-child
/// prefetch, but no stride layer. The stride tentpole's in-run bar is
/// measured against this (>= 1.8x at 100k routes), so the claim stays
/// reproducible from one command even after the library moves on.
/// Trimmed to the surface the bench exercises: `insert`,
/// `longest_match`, preorder `compact` (the bench never removes, so the
/// free-list is omitted — `insert` is bit-identical with an empty one).
mod arena3 {
    use sda_trie::bits::MAX_BITS;
    use sda_trie::BitStr;

    const NONE: u32 = u32::MAX;
    const ROOT: u32 = 0;

    #[derive(Clone, Copy)]
    struct Node {
        bits: u128,
        children: [u32; 2],
        label_len: u8,
        has_value: bool,
    }

    impl Node {
        fn new(label: BitStr, has_value: bool) -> Self {
            Node {
                bits: label.raw(),
                children: [NONE, NONE],
                label_len: label.len() as u8,
                has_value,
            }
        }

        fn label(&self) -> BitStr {
            BitStr::from_raw(self.bits, self.label_len as usize)
        }

        fn set_label(&mut self, label: BitStr) {
            self.bits = label.raw();
            self.label_len = label.len() as u8;
        }
    }

    fn prefetch_children(nodes: &[Node], node: &Node) {
        #[cfg(target_arch = "x86_64")]
        {
            let base = nodes.as_ptr();
            for bit in 0..2 {
                let c = node.children[bit];
                if c != NONE {
                    // SAFETY: prefetch is a hint; it dereferences nothing.
                    unsafe {
                        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                            base.wrapping_add(c as usize).cast::<i8>(),
                        );
                    }
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (nodes, node);
        }
    }

    #[inline(always)]
    fn descend_step(
        nodes: &[Node],
        idx: u32,
        key_len: usize,
        depth: usize,
        rem: u128,
    ) -> (u32, usize, u128) {
        let bit = (rem >> (MAX_BITS - 1)) as usize;
        let child = nodes[idx as usize].children[bit];
        if child == NONE {
            return (NONE, depth, rem);
        }
        let node = &nodes[child as usize];
        let ll = node.label_len as usize;
        if depth + ll > key_len || (node.bits ^ rem) >> (MAX_BITS - ll) != 0 {
            return (NONE, depth, rem);
        }
        prefetch_children(nodes, node);
        let rem = if ll >= MAX_BITS { 0 } else { rem << ll };
        (child, depth + ll, rem)
    }

    pub struct ArenaTrie<V> {
        nodes: Vec<Node>,
        values: Vec<Option<V>>,
    }

    impl<V> ArenaTrie<V> {
        pub fn new() -> Self {
            ArenaTrie {
                nodes: vec![Node::new(BitStr::empty(), false)],
                values: vec![None],
            }
        }

        fn alloc_node(&mut self, label: BitStr, value: Option<V>) -> u32 {
            let has_value = value.is_some();
            let idx = self.nodes.len();
            self.nodes.push(Node::new(label, has_value));
            self.values.push(value);
            idx as u32
        }

        pub fn insert(&mut self, key: &BitStr, value: V) {
            let mut idx = ROOT;
            let mut after_label = 0usize;
            loop {
                if after_label == key.len() {
                    self.nodes[idx as usize].has_value = true;
                    self.values[idx as usize] = Some(value);
                    return;
                }
                let next_bit = key.bit(after_label) as usize;
                let child = self.nodes[idx as usize].children[next_bit];
                if child == NONE {
                    let label = key.slice(after_label, key.len());
                    let leaf = self.alloc_node(label, Some(value));
                    self.nodes[idx as usize].children[next_bit] = leaf;
                    return;
                }
                let rest = key.slice(after_label, key.len());
                let child_label = self.nodes[child as usize].label();
                let common = child_label.common_prefix_len(&rest);
                if common == child_label.len() {
                    idx = child;
                    after_label += child_label.len();
                    continue;
                }
                let head = child_label.slice(0, common);
                let tail = child_label.slice(common, child_label.len());
                let tail_bit = tail.bit(0) as usize;
                let ends_here = common == rest.len();
                let split = self.alloc_node(head, None);
                self.nodes[child as usize].set_label(tail);
                self.nodes[split as usize].children[tail_bit] = child;
                self.nodes[idx as usize].children[next_bit] = split;
                if ends_here {
                    self.nodes[split as usize].has_value = true;
                    self.values[split as usize] = Some(value);
                } else {
                    let bit = rest.bit(common) as usize;
                    let label = rest.slice(common, rest.len());
                    let leaf = self.alloc_node(label, Some(value));
                    self.nodes[split as usize].children[bit] = leaf;
                }
                return;
            }
        }

        pub fn longest_match(&self, key: &BitStr) -> Option<(usize, &V)> {
            let nodes = self.nodes.as_slice();
            let mut idx = ROOT;
            let mut depth = 0usize;
            let mut rem = key.raw();
            let mut best = if nodes[ROOT as usize].has_value {
                (0usize, ROOT)
            } else {
                (0, NONE)
            };
            while depth < key.len() {
                let (child, d, r) = descend_step(nodes, idx, key.len(), depth, rem);
                if child == NONE {
                    break;
                }
                (idx, depth, rem) = (child, d, r);
                if nodes[idx as usize].has_value {
                    best = (depth, idx);
                }
            }
            (best.1 != NONE).then(|| (best.0, self.values[best.1 as usize].as_ref().unwrap()))
        }

        pub fn compact(&mut self) {
            let live = self.nodes.len();
            let mut nodes = Vec::with_capacity(live);
            let mut values = Vec::with_capacity(live);
            self.compact_at(ROOT, &mut nodes, &mut values);
            self.nodes = nodes;
            self.values = values;
        }

        fn compact_at(
            &mut self,
            idx: u32,
            nodes: &mut Vec<Node>,
            values: &mut Vec<Option<V>>,
        ) -> u32 {
            let node = self.nodes[idx as usize];
            let new_idx = nodes.len() as u32;
            nodes.push(Node {
                children: [NONE, NONE],
                ..node
            });
            values.push(self.values[idx as usize].take());
            for bit in 0..2 {
                if node.children[bit] != NONE {
                    let c = self.compact_at(node.children[bit], nodes, values);
                    nodes[new_idx as usize].children[bit] = c;
                }
            }
            new_idx
        }
    }
}

fn bench_trie_lpm(c: &mut Criterion) {
    let mut group = c.benchmark_group("trie_lpm");
    for routes in NEW_ROUTE_COUNTS {
        let mut trie: EidTrie<u32> = EidTrie::new();
        for i in 0..routes {
            trie.insert(EidPrefix::host(eid(i)), i);
        }
        // Bulk load done: re-lay the arena in DFS order and promote
        // dense levels to stride tables (the hook the production
        // population paths call).
        trie.compact();
        let stats = trie.mem_stats();
        eprintln!("trie_lpm new/{routes} layout: {stats}");
        if routes == 1_000_000 {
            // Scale-tier budget (ROADMAP): the 1M-route trie must fit in
            // ~2x a 64 MiB last-level cache. Deterministic — asserted
            // even in smoke mode.
            assert!(
                stats.capacity_bytes <= TRIE_1M_BUDGET_BYTES,
                "1M-route trie blew the memory budget: {} bytes > {} bytes",
                stats.capacity_bytes,
                TRIE_1M_BUDGET_BYTES
            );
        }
        let mut rng = SmallRng::seed_from_u64(11);
        group.bench_with_input(BenchmarkId::new("new", routes), &routes, |b, _| {
            b.iter(|| {
                let i = rng.gen_range(0..routes);
                black_box(trie.lookup(&eid(i)))
            });
        });
    }
    // The frozen PR-3 arena descent at the 100k tier — the stride
    // tentpole's in-run comparison point.
    {
        let routes = 100_000u32;
        let mut trie: arena3::ArenaTrie<u32> = arena3::ArenaTrie::new();
        for i in 0..routes {
            let Eid::V4(a) = eid(i) else { unreachable!() };
            trie.insert(&sda_trie::BitStr::from_bytes(&a.octets(), 32), i);
        }
        trie.compact();
        let mut rng = SmallRng::seed_from_u64(11);
        group.bench_with_input(BenchmarkId::new("arena3", routes), &routes, |b, _| {
            b.iter(|| {
                let i = rng.gen_range(0..routes);
                let Eid::V4(a) = eid(i) else { unreachable!() };
                black_box(trie.longest_match(&sda_trie::BitStr::from_bytes(&a.octets(), 32)))
            });
        });
    }
    for routes in ROUTE_COUNTS {
        let mut trie: seed_baseline::VecTrie<u32> = seed_baseline::VecTrie::new();
        for i in 0..routes {
            trie.insert(&seed_baseline::v4_key(&eid(i)), i);
        }
        let mut rng = SmallRng::seed_from_u64(11);
        group.bench_with_input(BenchmarkId::new("seed", routes), &routes, |b, _| {
            b.iter(|| {
                let i = rng.gen_range(0..routes);
                black_box(trie.longest_match(&seed_baseline::v4_key(&eid(i))))
            });
        });
    }
    group.finish();
}

/// The lockstep lane sweep: one full [`BATCH_KEYS`]-key batch resolved
/// per iteration through `longest_match_each_where_lanes` at 32 vs. 64
/// lanes, on the 100k-route stride trie. Medians are **ns per batch**
/// (divide by [`BATCH_KEYS`] for ns/key); the two rows share everything
/// but `L`, so their ratio isolates the lane-width effect that picked
/// [`sda_trie::DEFAULT_LANES`].
fn bench_trie_lpm_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("trie_lpm_batch");
    let routes = 100_000u32;
    let mut trie: sda_trie::PatriciaTrie<u32> = sda_trie::PatriciaTrie::new();
    for i in 0..routes {
        let Eid::V4(a) = eid(i) else { unreachable!() };
        trie.insert(&sda_trie::BitStr::from_bytes(&a.octets(), 32), i);
    }
    trie.compact();
    let mut rng = SmallRng::seed_from_u64(15);
    let keys: Vec<sda_trie::BitStr> = (0..BATCH_KEYS)
        .map(|_| {
            let i = rng.gen_range(0..routes);
            let Eid::V4(a) = eid(i) else { unreachable!() };
            sda_trie::BitStr::from_bytes(&a.octets(), 32)
        })
        .collect();
    group.bench_with_input(BenchmarkId::new("lanes32", routes), &routes, |b, _| {
        b.iter(|| {
            let mut hits = 0usize;
            trie.longest_match_each_where_lanes::<32, _, _>(
                &keys,
                |_| true,
                |_, m| hits += m.is_some() as usize,
            );
            black_box(hits)
        });
    });
    group.bench_with_input(BenchmarkId::new("lanes64", routes), &routes, |b, _| {
        b.iter(|| {
            let mut hits = 0usize;
            trie.longest_match_each_where_lanes::<64, _, _>(
                &keys,
                |_| true,
                |_, m| hits += m.is_some() as usize,
            );
            black_box(hits)
        });
    });
    group.finish();
}

fn bench_map_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_cache_lookup");
    let ttl = SimDuration::from_days(365);
    let now = SimTime::ZERO + SimDuration::from_secs(60);

    // Hit: every probed EID is cached and fresh.
    let mut cache = MapCache::new();
    for i in 0..CACHE_ROUTES {
        cache.install(
            vn(),
            EidPrefix::host(eid(i)),
            Rloc::for_router_index((i % 200) as u16),
            ttl,
            SimTime::ZERO,
        );
    }
    cache.compact();
    eprintln!("map_cache hit/{CACHE_ROUTES} layout: {}", cache.mem_stats());
    let mut rng = SmallRng::seed_from_u64(12);
    group.bench_with_input(BenchmarkId::new("hit", CACHE_ROUTES), &(), |b, _| {
        b.iter(|| {
            let i = rng.gen_range(0..CACHE_ROUTES);
            black_box(cache.lookup(vn(), eid(i), now))
        });
    });

    // Miss: probes outside the installed range (no entry, no mutation).
    let mut rng = SmallRng::seed_from_u64(13);
    group.bench_with_input(BenchmarkId::new("miss", CACHE_ROUTES), &(), |b, _| {
        b.iter(|| {
            let i = CACHE_ROUTES + rng.gen_range(0..CACHE_ROUTES);
            black_box(cache.lookup(vn(), eid(i), now))
        });
    });

    // Stale: every entry SMR'd; lookups return Stale, refreshing in place.
    let mut stale_cache = MapCache::new();
    for i in 0..CACHE_ROUTES {
        stale_cache.install(
            vn(),
            EidPrefix::host(eid(i)),
            Rloc::for_router_index((i % 200) as u16),
            ttl,
            SimTime::ZERO,
        );
        stale_cache.mark_stale(vn(), eid(i), SimTime::ZERO);
    }
    stale_cache.compact();
    let mut rng = SmallRng::seed_from_u64(14);
    group.bench_with_input(BenchmarkId::new("stale", CACHE_ROUTES), &(), |b, _| {
        b.iter(|| {
            let i = rng.gen_range(0..CACHE_ROUTES);
            black_box(stale_cache.lookup(vn(), eid(i), now))
        });
    });

    // Seed baseline hit: remove + insert refresh on the Vec-backed trie.
    let mut seed_trie: seed_baseline::VecTrie<seed_baseline::SeedEntry> =
        seed_baseline::VecTrie::new();
    for i in 0..CACHE_ROUTES {
        seed_trie.insert(
            &seed_baseline::v4_key(&eid(i)),
            seed_baseline::SeedEntry {
                rloc: Rloc::for_router_index((i % 200) as u16),
                expires_at: SimTime::ZERO + ttl,
                last_used: SimTime::ZERO,
                stale: false,
            },
        );
    }
    let mut rng = SmallRng::seed_from_u64(12);
    group.bench_with_input(BenchmarkId::new("seed_hit", CACHE_ROUTES), &(), |b, _| {
        b.iter(|| {
            let i = rng.gen_range(0..CACHE_ROUTES);
            black_box(seed_baseline::seed_lookup(&mut seed_trie, &eid(i), now))
        });
    });

    // The 1M-entry scale tier: same hit workload at two orders of
    // magnitude more routes, with the memory budget asserted (no seed
    // counterpart — building the Vec-backed trie at 1M takes minutes).
    let mut big_cache = MapCache::new();
    for i in 0..CACHE_ROUTES_1M {
        big_cache.install(
            vn(),
            EidPrefix::host(eid(i)),
            Rloc::for_router_index((i % 200) as u16),
            ttl,
            SimTime::ZERO,
        );
    }
    big_cache.compact();
    let big_stats = big_cache.mem_stats();
    eprintln!("map_cache hit/{CACHE_ROUTES_1M} layout: {big_stats}");
    assert!(
        big_stats.capacity_bytes <= CACHE_1M_BUDGET_BYTES,
        "1M-entry map-cache blew the memory budget: {} bytes > {} bytes",
        big_stats.capacity_bytes,
        CACHE_1M_BUDGET_BYTES
    );
    let mut rng = SmallRng::seed_from_u64(12);
    group.bench_with_input(BenchmarkId::new("hit", CACHE_ROUTES_1M), &(), |b, _| {
        b.iter(|| {
            let i = rng.gen_range(0..CACHE_ROUTES_1M);
            black_box(big_cache.lookup(vn(), eid(i), now))
        });
    });

    group.finish();
}

fn main() {
    let smoke = std::env::var("SDA_BENCH_SMOKE").is_ok();
    let mut criterion = if smoke {
        Criterion::default()
            .sample_size(10)
            .measurement_time(std::time::Duration::from_millis(60))
            .warm_up_time(std::time::Duration::from_millis(20))
    } else {
        Criterion::default()
            .sample_size(40)
            .measurement_time(std::time::Duration::from_millis(600))
            .warm_up_time(std::time::Duration::from_millis(200))
    };
    bench_trie_lpm(&mut criterion);
    bench_trie_lpm_batch(&mut criterion);
    bench_map_cache(&mut criterion);

    let out = if smoke {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_lpm.smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lpm.json")
    };
    criterion.write_json(out).expect("write BENCH_lpm.json");
    eprintln!("wrote {out}");

    // Schema guards (run even in smoke mode): exactly this PR's rows in
    // emission order, with the PR-1 rows surviving as a subsequence, so
    // committed BENCH_lpm.json files stay comparable across the
    // PR-1 → PR-3 → PR-6 trajectory.
    let results = criterion.results();
    let got: Vec<(&str, &str)> = results
        .iter()
        .map(|r| (r.group.as_str(), r.id.as_str()))
        .collect();
    assert_eq!(got, EXPECTED_IDS, "BENCH_lpm.json schema drifted");
    let mut pr1 = PR1_IDS.iter().peekable();
    for row in &got {
        if pr1.peek() == Some(&row) {
            pr1.next();
        }
    }
    assert_eq!(pr1.peek(), None, "a PR-1 row vanished from BENCH_lpm.json");

    let median = |group: &str, id: &str| {
        results
            .iter()
            .find(|r| r.group == group && r.id == id)
            .map(|r| r.median_ns)
            .expect("bench result present")
    };
    let new_hit = median("map_cache_lookup", "hit/10000");
    let seed_hit = median("map_cache_lookup", "seed_hit/10000");
    let new_100k = median("trie_lpm", "new/100000");
    let arena3_100k = median("trie_lpm", "arena3/100000");
    let lanes32 = median("trie_lpm_batch", "lanes32/100000");
    let lanes64 = median("trie_lpm_batch", "lanes64/100000");
    eprintln!(
        "map-cache hit speedup vs seed: {:.1}x ({:.0} ns -> {:.0} ns)",
        seed_hit / new_hit,
        seed_hit,
        new_hit
    );
    eprintln!(
        "trie LPM 100k speedup vs PR-1 layout: {:.2}x ({:.0} ns committed -> {:.0} ns)",
        PR1_NEW_100K_MEDIAN_NS / new_100k,
        PR1_NEW_100K_MEDIAN_NS,
        new_100k
    );
    eprintln!(
        "trie LPM 100k stride speedup vs PR-3 arena: {:.2}x ({:.0} ns -> {:.0} ns)",
        arena3_100k / new_100k,
        arena3_100k,
        new_100k
    );
    eprintln!(
        "lockstep lane sweep at 100k: 32 lanes {:.2} ns/key, 64 lanes {:.2} ns/key ({:+.1}%)",
        lanes32 / BATCH_KEYS as f64,
        lanes64 / BATCH_KEYS as f64,
        (lanes64 / lanes32 - 1.0) * 100.0
    );
    if smoke {
        eprintln!("smoke mode: skipping the perf assertions");
        return;
    }
    // The PR-6 acceptance bar: the stride descent at 100k routes must
    // be at least 1.8x faster than the frozen PR-3 arena descent,
    // measured in the same run on the same machine.
    assert!(
        arena3_100k / new_100k >= 1.8,
        "stride trie fell below the 1.8x bar vs the PR-3 arena: {:.2}x ({new_100k:.0} ns)",
        arena3_100k / new_100k
    );
    // The PR-1 acceptance bar: new map-cache hit lookup at 10k routes
    // must be at least 2x faster than the seed algorithm.
    assert!(
        seed_hit / new_hit >= 2.0,
        "map-cache hit regressed below the 2x acceptance bar: {:.1}x",
        seed_hit / new_hit
    );
    // The PR-3 acceptance bar: the arena-compacted descent at 100k
    // routes must be at least 1.5x faster than the committed PR-1
    // pointer-chasing median.
    assert!(
        PR1_NEW_100K_MEDIAN_NS / new_100k >= 1.5,
        "arena trie fell below the 1.5x bar vs PR 1: {:.2}x ({new_100k:.0} ns)",
        PR1_NEW_100K_MEDIAN_NS / new_100k
    );
}
