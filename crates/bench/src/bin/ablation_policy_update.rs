//! §5.4 ablation — policy-update strategies: move endpoints between
//! groups vs. rewrite group ACLs.
//!
//! The paper: "it can be more scalable moving users to different groups
//! rather than directly updating the group-based ACLs … it is not
//! always the case" — it depends on the endpoint-per-group vs
//! rules-touched distribution. This harness sweeps both axes and prints
//! the crossover.
//!
//! Run with: `cargo run -p sda-bench --bin ablation_policy_update`

use sda_policy::{Population, UpdatePlan, UpdateStrategy};
use sda_types::{GroupId, RouterId, VnId};

fn vn() -> VnId {
    VnId::new(1).unwrap()
}

fn main() {
    println!("§5.4 ablation — signaling cost of the two update strategies\n");

    // Sweep: group size (endpoints to move) × rules touched, with the
    // group spread over 20 edges.
    let edges = 20u32;
    println!("signaling messages (move-endpoints / rewrite-rules), group on {edges} edges:");
    println!(
        "
 endpoints\\rules │      5 │     20 │     80 │    320"
    );
    println!("─────────────────┼────────┼────────┼────────┼───────");
    for group_size in [10u32, 100, 1_000, 10_000] {
        let mut pop = Population::new();
        for e in 0..edges {
            let n = group_size / edges + u32::from(e < group_size % edges);
            if n > 0 {
                pop.add(RouterId(e), vn(), GroupId(1), n);
            }
        }
        let mut row = format!(" {group_size:>15} │");
        for rules in [5u32, 20, 80, 320] {
            let plan = UpdatePlan::acquisition(vn(), GroupId(1), GroupId(2), rules);
            let mv = plan.signaling_messages(UpdateStrategy::MoveEndpoints, &pop);
            let rw = plan.signaling_messages(UpdateStrategy::RewriteRules, &pop);
            let marker = if plan.cheaper_strategy(&pop) == UpdateStrategy::MoveEndpoints {
                "M"
            } else {
                "R"
            };
            row.push_str(&format!(" {mv:>3}/{rw:<3}{marker}│"));
        }
        println!("{row}");
    }
    println!("\n(M = moving endpoints cheaper, R = rewriting rules cheaper)");

    // The paper's two playbooks.
    println!("\nacquisition playbook: 500 new staff on 5 edges, 12 rules touched");
    let mut pop = Population::new();
    for e in 0..5 {
        pop.add(RouterId(e), vn(), GroupId(7), 100);
    }
    let plan = UpdatePlan::acquisition(vn(), GroupId(7), GroupId(1), 12);
    println!(
        "  move-endpoints: {} msgs   rewrite-rules: {} msgs  → {:?}",
        plan.signaling_messages(UpdateStrategy::MoveEndpoints, &pop),
        plan.signaling_messages(UpdateStrategy::RewriteRules, &pop),
        plan.cheaper_strategy(&pop)
    );

    println!("\nservice-insertion playbook: retag 30 middlebox-bound endpoints");
    println!("instead of installing per-hop policies on 50 path edges:");
    let mut pop = Population::new();
    pop.add(RouterId(1), vn(), GroupId(9), 30);
    for e in 0..50 {
        pop.add(RouterId(e), vn(), GroupId(10), 1);
    }
    let plan = UpdatePlan {
        vn: vn(),
        moved_groups: (GroupId(9), GroupId(10)),
        rewritten_rows: vec![(GroupId(10), 4)],
    };
    println!(
        "  move (retag): {} msgs   rewrite per-hop: {} msgs  → {:?}",
        plan.signaling_messages(UpdateStrategy::MoveEndpoints, &pop),
        plan.signaling_messages(UpdateStrategy::RewriteRules, &pop),
        plan.cheaper_strategy(&pop)
    );
}
