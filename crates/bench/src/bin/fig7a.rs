//! Fig. 7a — routing-server **route-request** delay vs. number of
//! configured routes, at the paper's offered load of 800 queries/s.
//!
//! The paper's result: boxplots are flat across 10/100/1k/10k routes
//! (Patricia-trie property). We preload a real `MapServer`, verify every
//! query resolves, and measure sojourn through the server's single-CPU
//! queue (constant service × jitter + queueing), printing boxplot rows
//! relative to the minimum delay of a 1-route server — exactly the
//! paper's normalization.
//!
//! Run with: `cargo run --release -p sda-bench --bin fig7a`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sda_bench::{fifo_sojourns, print_boxplot_row};
use sda_lisp::{MapServer, REQUEST_SERVICE};
use sda_simnet::{SimTime, Summary};
use sda_types::{Eid, Rloc, VnId};
use sda_wire::lisp::Message;
use std::net::Ipv4Addr;

fn eid(i: u32) -> Eid {
    Eid::V4(Ipv4Addr::from(0x0A00_0000 | i))
}

fn vn() -> VnId {
    VnId::new(100).unwrap()
}

fn preload(routes: u32) -> MapServer {
    let mut s = MapServer::new(Rloc::for_router_index(65_000));
    for i in 0..routes {
        s.handle(
            Message::MapRegister {
                nonce: u64::from(i),
                vn: vn(),
                eid: eid(i),
                rloc: Rloc::for_router_index((i % 200) as u16),
                ttl_secs: 0,
                want_notify: false,
            },
            SimTime::ZERO,
        );
    }
    // Registration storm done: re-lay the trie arenas in DFS order.
    s.compact();
    s
}

/// One experiment: 10k distinct queries at `rate` q/s against a server
/// with `routes` routes; returns sojourn samples (seconds).
fn run(routes: u32, rate: f64, seed: u64) -> Vec<f64> {
    let mut server = preload(routes);
    // Sanity: every query must resolve (distinct targets, as the paper:
    // "each query requested … a different route").
    let queries = 10_000u32;
    for q in 0..queries.min(routes) {
        let out = server.handle(
            Message::MapRequest {
                nonce: u64::from(q),
                smr: false,
                vn: vn(),
                eid: eid(q % routes),
                itr_rloc: Rloc::for_router_index(1),
            },
            SimTime::ZERO,
        );
        assert!(
            matches!(
                out[0].1,
                Message::MapReply {
                    negative: false,
                    ..
                }
            ),
            "preloaded route must resolve"
        );
    }
    // Service latency through the control CPU at the offered load.
    let mut arrivals = sda_workloads::PoissonArrivals::new(rate, SimTime::ZERO, seed);
    let times: Vec<f64> = (0..queries)
        .map(|_| arrivals.next_arrival().as_secs_f64())
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xBEEF);
    let base = REQUEST_SERVICE.as_secs_f64();
    fifo_sojourns(&times, || base * jitter(&mut rng))
}

fn jitter(rng: &mut SmallRng) -> f64 {
    use rand::Rng;
    let u: f64 = rng.gen::<f64>().max(1e-12);
    1.0 + ((-u.ln()) * 0.18).min(2.0)
}

fn main() {
    println!("Fig. 7a — route-request delay vs configured routes (800 q/s)");
    println!("values relative to the minimum delay of a 1-route server\n");
    let baseline = run(1, 800.0, 1).into_iter().fold(f64::INFINITY, f64::min);
    println!("    routes │  relative delay (boxplot)");
    println!("───────────┼─────────────────────────────────────────────────");
    for routes in [10u32, 100, 1_000, 10_000] {
        let samples = run(routes, 800.0, u64::from(routes));
        let s = Summary::of(&samples).unwrap();
        print_boxplot_row(&routes.to_string(), &s, baseline);
    }
    println!("\npaper: medians ≈1.6–1.8×, whiskers ≈1.4–2.2×, flat across sizes");
}
