//! §4.1 ablation — horizontal routing-server scaling.
//!
//! "the architecture scales horizontally and can deploy more routing
//! servers. Then, we load balance across edge routers by grouping them
//! and pointing each group to a different routing server for the route
//! requests, and perform route updates on all servers."
//!
//! This harness drives the warehouse's control load (800 moves/s ⇒
//! 800 updates/s replicated to *every* shard + 800 requests/s split
//! *across* shards) through 1–4 shards and reports request sojourn.
//! Requests are routed with the real [`ShardedMapServer::shard_for`]
//! hash over 200 edge RLOCs.
//!
//! Run with: `cargo run --release -p sda-bench --bin ablation_sharding`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sda_bench::fifo_sojourns;
use sda_lisp::{ShardedMapServer, REQUEST_SERVICE, UPDATE_SERVICE};
use sda_simnet::{SimTime, Summary};
use sda_types::Rloc;
use sda_workloads::PoissonArrivals;

fn main() {
    println!("§4.1 ablation — routing-server sharding under warehouse load\n");
    let moves_per_sec = 800.0;
    let duration = 20.0;
    println!(
        "load: {moves_per_sec} updates/s to ALL shards + {moves_per_sec} requests/s split across shards\n"
    );

    println!(" shards │ request p50 │ request p95 │ shard utilization");
    println!("────────┼─────────────┼─────────────┼──────────────────");
    for shards in [1usize, 2, 3, 4] {
        let rlocs: Vec<Rloc> = (0..shards)
            .map(|i| Rloc::for_router_index(64_000 + i as u16))
            .collect();
        let sharded = ShardedMapServer::new(rlocs);
        let mut rng = SmallRng::seed_from_u64(shards as u64);

        // Interleave the two Poisson streams per shard; updates go to
        // every shard, requests only to their hash-owner.
        let mut updates = PoissonArrivals::new(moves_per_sec, SimTime::ZERO, 1);
        let mut requests = PoissonArrivals::new(moves_per_sec, SimTime::ZERO, 2);
        let horizon = SimTime::ZERO + sda_simnet::SimDuration::from_secs_f64(duration);
        let upd_times = updates.take_until(horizon);
        let req_times = requests.take_until(horizon);

        // Per-shard arrival streams: (time, service, is_request).
        let mut per_shard: Vec<Vec<(f64, f64, bool)>> = vec![Vec::new(); shards];
        for t in &upd_times {
            for s in per_shard.iter_mut() {
                s.push((t.as_secs_f64(), UPDATE_SERVICE.as_secs_f64(), false));
            }
        }
        for t in &req_times {
            // A random edge issues the request; the hash picks its shard.
            let edge = Rloc::for_router_index(rng.gen_range(0..200u16));
            let shard = sharded.shard_for(edge);
            per_shard[shard].push((t.as_secs_f64(), REQUEST_SERVICE.as_secs_f64(), true));
        }

        let mut request_sojourns = Vec::new();
        let mut utilization = 0.0;
        for stream in per_shard.iter_mut() {
            stream.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let times: Vec<f64> = stream.iter().map(|(t, _, _)| *t).collect();
            let mut it = stream.iter();
            let sojourns = fifo_sojourns(&times, || it.next().unwrap().1);
            for ((_, _, is_req), s) in stream.iter().zip(&sojourns) {
                if *is_req {
                    request_sojourns.push(*s);
                }
            }
            let busy: f64 = stream.iter().map(|(_, s, _)| *s).sum();
            utilization += busy / duration / shards as f64;
        }

        let s = Summary::of(&request_sojourns).unwrap();
        println!(
            " {shards:>6} │ {:>9.1}µs │ {:>9.1}µs │ {:>16.0}%",
            s.p50 * 1e6,
            s.p95 * 1e6,
            utilization * 100.0
        );
    }

    println!("\nupdates replicate everywhere, so sharding only relieves the");
    println!("request path — utilization floors at the update load. That is");
    println!("the paper's exact prescription and its cost.");
}
