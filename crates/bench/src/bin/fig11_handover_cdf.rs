//! Fig. 11 — CDF of handover delay for the event-driven (LISP) and
//! proactive (BGP) control planes under massive mobility.
//!
//! Full §4.3 scale: 16,000 endpoints, 200 edges (2 physical + 198
//! emulated), 800 mobility events per second. The paper's result: the
//! proactive protocol converges ~10× slower, with visibly higher
//! variance, because it replicates every update to all 200 edges in an
//! order unrelated to who needs it.
//!
//! Run with: `cargo run --release -p sda-bench --bin fig11_handover_cdf`
//! (add `--quick` for a reduced run)

use sda_bench::print_cdf_pair;
use sda_simnet::Summary;
use sda_workloads::warehouse::{run_bgp, run_lisp, WarehouseParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        WarehouseParams::small()
    } else {
        WarehouseParams::default()
    };
    println!(
        "Fig. 11 — warehouse: {} hosts, {} edges, {} moves/s{}",
        params.hosts,
        params.edges,
        params.moves_per_sec,
        if quick { " (quick mode)" } else { "" }
    );

    eprintln!("running reactive (LISP)…");
    let lisp_samples = run_lisp(&params);
    eprintln!("running proactive (BGP route reflector)…");
    let bgp_samples = run_bgp(&params);

    let lisp: Vec<f64> = lisp_samples.iter().filter_map(|s| s.delay_secs()).collect();
    let bgp: Vec<f64> = bgp_samples.iter().filter_map(|s| s.delay_secs()).collect();
    println!(
        "restored: lisp {}/{}  bgp {}/{}",
        lisp.len(),
        lisp_samples.len(),
        bgp.len(),
        bgp_samples.len()
    );

    let ls = Summary::of(&lisp).expect("lisp samples");
    let bs = Summary::of(&bgp).expect("bgp samples");
    println!("\nabsolute handover delay:");
    println!("          │     LISP │      BGP");
    println!(
        " median   │ {:7.2}ms │ {:7.2}ms",
        ls.p50 * 1e3,
        bs.p50 * 1e3
    );
    println!(
        " mean     │ {:7.2}ms │ {:7.2}ms",
        ls.mean * 1e3,
        bs.mean * 1e3
    );
    println!(
        " p95      │ {:7.2}ms │ {:7.2}ms",
        ls.p95 * 1e3,
        bs.p95 * 1e3
    );
    println!(
        " max      │ {:7.2}ms │ {:7.2}ms",
        ls.max * 1e3,
        bs.max * 1e3
    );
    let iqr = |s: &Summary| s.p75 - s.p25;
    println!(
        "\nmean ratio (BGP/LISP): {:.1}×   (paper: ≈10×)",
        bs.mean / ls.mean
    );
    println!(
        "IQR ratio  (BGP/LISP): {:.1}×   (paper: proactive variance consistently higher)",
        iqr(&bs) / iqr(&ls).max(1e-9)
    );

    // The figure itself: CDF of delay relative to the global minimum.
    let unit = ls.min.min(bs.min);
    println!("\nCDF — handover delay relative to minimum (paper x-axis 0–45):");
    print_cdf_pair("LISP", &lisp, "BGP", &bgp, unit, 20);
}
