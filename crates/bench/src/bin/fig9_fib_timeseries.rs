//! Fig. 9 — border vs. edge FIB entries over three weeks, both
//! buildings (six panels in the paper; here six text blocks).
//!
//! Expected shape per the paper:
//! * border follows presence (day/night + weekday/weekend);
//! * edges hold a fraction of the border's state;
//! * building A's edges retain their caches between workdays and clear
//!   over the weekend;
//! * building B's edges follow the day/night routine more closely
//!   (night chatter triggers negative resolutions that delete entries).
//!
//! Run with: `cargo run --release -p sda-bench --bin fig9_fib_timeseries`

use sda_simnet::SimTime;
use sda_workloads::campus::{CampusParams, CampusScenario};

fn print_weeks(scenario: &CampusScenario, weeks: usize) {
    let metrics = scenario.fabric.metrics();
    let border: Vec<(SimTime, f64)> = metrics.series(&scenario.border_series(0)).to_vec();
    let edges: Vec<Vec<(SimTime, f64)>> = (0..scenario.edges.len())
        .map(|i| metrics.series(&scenario.edge_series(i)).to_vec())
        .collect();

    for week in 0..weeks {
        println!("\nbuilding {} — week {}:", scenario.params.name, week + 1);
        println!("  day hour │ border │ avg edge");
        println!(" ──────────┼────────┼─────────");
        for (idx, (t, b)) in border.iter().enumerate() {
            let hours = t.as_secs_f64() / 3600.0;
            let week_of = (hours / (24.0 * 7.0)) as usize;
            if week_of != week || idx % 6 != 0 {
                continue;
            }
            let e_avg: f64 = edges
                .iter()
                .filter_map(|s| s.get(idx).map(|(_, v)| *v))
                .sum::<f64>()
                / edges.len() as f64;
            let dow =
                ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"][((hours / 24.0) as usize) % 7];
            println!(
                "  {dow} {:02}:00 │ {b:6.0} │ {e_avg:8.1}",
                (hours as usize) % 24
            );
        }
    }
}

fn main() {
    for mut params in [CampusParams::building_a(), CampusParams::building_b()] {
        params.days = 21; // three weeks, as plotted in Fig. 9
        println!(
            "═══ building {} — {} endpoints, {} edges, {} border(s) ═══",
            params.name, params.endpoints, params.edges, params.borders
        );
        let mut scenario = CampusScenario::build(params);
        scenario.run();
        print_weeks(&scenario, 3);
        println!();
    }
}
