//! §3.2.2 ablation — the border default route.
//!
//! "A drawback of using a reactive protocol such as LISP is the initial
//! packet loss until the edge router downloads the route for a new
//! destination. We have overcome this issue by installing a default
//! route in all edge routers that points to the border router, and by
//! synchronizing the routing state in the border."
//!
//! This harness starts many flows against cold caches, with and without
//! the border fallback, and counts first-packet losses.
//!
//! Run with: `cargo run --release -p sda-bench --bin ablation_border_sync`

use sda_core::controller::FabricBuilder;
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, GroupId, Ipv4Prefix, PortId};
use std::net::Ipv4Addr;

struct Outcome {
    delivered: u64,
    first_packet_drops: u64,
    border_relays: u64,
}

fn run(border_default_route: bool) -> Outcome {
    let mut b = FabricBuilder::new(55);
    b.config_mut().border_default_route = border_default_route;
    let vn = b.add_vn(1, Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16).unwrap());
    let g = GroupId(1);
    b.allow(vn, g, g);

    let n_edges = 10;
    let flows = 200;
    let edges: Vec<_> = (0..n_edges).map(|i| b.add_edge(format!("e{i}"))).collect();
    let border = b.add_border("border", vec![]);
    let endpoints: Vec<_> = (0..flows * 2).map(|_| b.mint_endpoint(vn, g)).collect();

    let mut f = b.build();
    for (i, ep) in endpoints.iter().enumerate() {
        f.attach_at(SimTime::ZERO, edges[i % n_edges], *ep, PortId(i as u16));
    }
    f.run_until(SimTime::ZERO + SimDuration::from_secs(1));

    // Each flow: 5 packets at 10 ms spacing from endpoint 2i to 2i+1
    // (cross-edge, cold cache — packet 1 always misses).
    let mut t0 = SimTime::ZERO + SimDuration::from_secs(2);
    for i in 0..flows {
        let src = endpoints[2 * i];
        let dst = endpoints[2 * i + 1];
        let src_edge = edges[(2 * i) % n_edges];
        for k in 0..5 {
            f.send_at(
                t0 + SimDuration::from_millis(10 * k),
                src_edge,
                src.mac,
                Eid::V4(dst.ipv4),
                500,
                (i * 10 + k as usize) as u64,
                false,
            );
        }
        t0 += SimDuration::from_millis(2);
    }
    f.run_until(t0 + SimDuration::from_secs(2));

    let mut delivered = 0;
    let mut first_packet_drops = 0;
    for e in &edges {
        let s = f.edge(*e).stats();
        delivered += s.delivered;
        first_packet_drops += s.first_packet_drops;
    }
    Outcome {
        delivered,
        first_packet_drops,
        border_relays: f.border(border).stats().relayed,
    }
}

fn main() {
    println!("§3.2.2 ablation — border default route vs drop-on-miss\n");
    let with = run(true);
    let without = run(false);

    println!("                      │ with border sync │ without");
    println!("──────────────────────┼──────────────────┼────────");
    println!(
        " packets delivered    │ {:>16} │ {:>7}",
        with.delivered, without.delivered
    );
    println!(
        " first-packet drops   │ {:>16} │ {:>7}",
        with.first_packet_drops, without.first_packet_drops
    );
    println!(
        " border relays        │ {:>16} │ {:>7}",
        with.border_relays, without.border_relays
    );

    assert_eq!(with.first_packet_drops, 0, "border sync must absorb misses");
    assert!(
        without.first_packet_drops > 0,
        "ablation must show the loss"
    );
    assert!(with.delivered > without.delivered);
    println!(
        "\nwithout the synced border, every cold flow loses its head packets \
         ({} lost here); with it, the border absorbs them — at the cost of \
         a more powerful border box.",
        without.first_packet_drops
    );
}
