//! Table 5 — average FIB entries over a 5-week period, split into all /
//! working hours (9:00–19:00) / nighttime, for border and edge routers
//! of both buildings, plus the headline edge-vs-border state reduction.
//!
//! Paper's numbers:
//! ```text
//!            Building A        Building B
//! Border  all 50 day 85 night 19   all 291 day 362 night 227
//! Edge    all 42 day 47 night 38   all  34 day  42 night  27
//! Decrease(all)   16%                   88%
//! ```
//!
//! Run with: `cargo run --release -p sda-bench --bin table5_fib_average`

use sda_bench::day_night_split;
use sda_workloads::campus::{CampusParams, CampusScenario};

struct Row {
    building: &'static str,
    border: sda_bench::DayNight,
    edge: sda_bench::DayNight,
}

fn run(mut params: CampusParams) -> Row {
    params.days = 35; // five weeks
    let building = params.name;
    let mut scenario = CampusScenario::build(params);
    scenario.run();
    let metrics = scenario.fabric.metrics();
    let to_hours = |s: &[(sda_simnet::SimTime, f64)]| -> Vec<(f64, f64)> {
        s.iter()
            .map(|(t, v)| (t.as_secs_f64() / 3600.0, *v))
            .collect()
    };
    let border = day_night_split(&to_hours(metrics.series(&scenario.border_series(0))))
        .expect("border series");
    // Pool all edge samples.
    let mut edge_samples: Vec<(f64, f64)> = Vec::new();
    for i in 0..scenario.edges.len() {
        edge_samples.extend(to_hours(metrics.series(&scenario.edge_series(i))));
    }
    let edge = day_night_split(&edge_samples).expect("edge series");
    Row {
        building,
        border,
        edge,
    }
}

fn main() {
    println!("Table 5 — average FIB entries, 5-week run (measured | paper)\n");
    let rows: Vec<Row> = [CampusParams::building_a(), CampusParams::building_b()]
        .into_iter()
        .map(run)
        .collect();

    let paper: &[(&str, [f64; 6])] = &[
        ("A", [50.0, 85.0, 19.0, 42.0, 47.0, 38.0]),
        ("B", [291.0, 362.0, 227.0, 34.0, 42.0, 27.0]),
    ];

    println!(" Router │ Period │   A meas │  A paper │   B meas │  B paper");
    println!("────────┼────────┼──────────┼──────────┼──────────┼─────────");
    let get = |r: &Row, i: usize| match i {
        0 => r.border.all,
        1 => r.border.day,
        2 => r.border.night,
        3 => r.edge.all,
        4 => r.edge.day,
        _ => r.edge.night,
    };
    let labels = [
        ("Border", "All", 0),
        ("Border", "Day", 1),
        ("Border", "Night", 2),
        ("Edge", "All", 3),
        ("Edge", "Day", 4),
        ("Edge", "Night", 5),
    ];
    for (router, period, idx) in labels {
        println!(
            " {router:<6} │ {period:<6} │ {:8.0} │ {:8.0} │ {:8.0} │ {:8.0}",
            get(&rows[0], idx),
            paper[0].1[idx],
            get(&rows[1], idx),
            paper[1].1[idx],
        );
    }

    for r in &rows {
        let decrease = (1.0 - r.edge.all / r.border.all) * 100.0;
        let paper_dec = if r.building == "A" { 16.0 } else { 88.0 };
        println!(
            "\n building {}: edge-vs-border state decrease (All): {decrease:.0}%  (paper: {paper_dec:.0}%)",
            r.building
        );
    }
}
