//! §5.3 ablation — policy enforcement point: **egress** (SDA's choice)
//! vs. **ingress**.
//!
//! The trade-off the paper describes: ingress saves the bandwidth of
//! traffic that will be dropped, but needs rules for *all possible
//! destination groups* at every edge (and a way to learn destination
//! groups); egress needs only the rules toward locally attached groups
//! and keeps the `(Overlay IP, GroupId)` binding fresh for free.
//!
//! We run the identical workload twice and compare: ACL state per edge,
//! overlay bytes spent on eventually-dropped traffic, and where drops
//! happen.
//!
//! Run with: `cargo run --release -p sda-bench --bin ablation_enforcement_point`

use sda_core::controller::FabricBuilder;
use sda_core::EnforcementPoint;
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, GroupId, Ipv4Prefix, PortId};
use std::net::Ipv4Addr;

struct Outcome {
    rules_per_edge: f64,
    overlay_bytes: u64,
    egress_drops: u64,
    ingress_drops: u64,
}

fn run(enforcement: EnforcementPoint) -> Outcome {
    let mut b = FabricBuilder::new(33);
    b.config_mut().enforcement = enforcement;
    let vn = b.add_vn(1, Ipv4Prefix::new(Ipv4Addr::new(10, 1, 0, 0), 16).unwrap());

    // 12 groups; clients (group 1) may reach only even server groups.
    let client = GroupId(1);
    for g in 2..=12 {
        if g % 2 == 0 {
            b.allow(vn, client, GroupId(g));
        } else {
            b.deny(vn, client, GroupId(g));
        }
    }

    let n_edges = 6;
    let edges: Vec<_> = (0..n_edges).map(|i| b.add_edge(format!("e{i}"))).collect();
    b.add_border("border", vec![]);

    // One client per edge; one server of each group spread round-robin.
    let clients: Vec<_> = (0..n_edges).map(|_| b.mint_endpoint(vn, client)).collect();
    let servers: Vec<_> = (2..=12)
        .map(|g| (g, b.mint_endpoint(vn, GroupId(g))))
        .collect();

    let mut f = b.build();
    for (i, c) in clients.iter().enumerate() {
        f.attach_at(SimTime::ZERO, edges[i], *c, PortId(1));
    }
    for (j, (_, s)) in servers.iter().enumerate() {
        f.attach_at(SimTime::ZERO, edges[j % n_edges], *s, PortId(2));
    }
    f.run_until(SimTime::ZERO + SimDuration::from_millis(100));

    // Every client sends 20 packets to every server (half will be
    // denied). Two rounds so caches are warm for the second.
    let mut t = SimTime::ZERO + SimDuration::from_millis(200);
    for round in 0..20 {
        for (i, c) in clients.iter().enumerate() {
            for (g, s) in &servers {
                f.send_at(
                    t,
                    edges[i],
                    c.mac,
                    Eid::V4(s.ipv4),
                    1000,
                    (round * 100 + g) as u64,
                    false,
                );
                t += SimDuration::from_micros(200);
            }
        }
    }
    f.run_until(t + SimDuration::from_secs(1));

    let mut rules = 0usize;
    let mut egress_drops = 0u64;
    let mut ingress_drops = 0u64;
    for (i, e) in edges.iter().enumerate() {
        let edge = f.edge(*e);
        rules += edge.acl().len();
        // In ingress mode drops register at the sender; in egress mode
        // at the destination. policy_drops counts both; attribute by
        // which pipeline could have dropped: clients only exist one per
        // edge, so sender-side drops = drops on edges whose *client*
        // initiated them. Simplest faithful split: ask the stats.
        let s = edge.stats();
        let _ = i;
        match enforcement {
            EnforcementPoint::Egress => egress_drops += s.policy_drops,
            EnforcementPoint::Ingress => ingress_drops += s.policy_drops,
        }
    }
    Outcome {
        rules_per_edge: rules as f64 / n_edges as f64,
        overlay_bytes: f.metrics().counter("fabric.overlay_bytes"),
        egress_drops,
        ingress_drops,
    }
}

fn main() {
    println!("§5.3 ablation — enforcement point: bandwidth vs state\n");
    let egress = run(EnforcementPoint::Egress);
    let ingress = run(EnforcementPoint::Ingress);

    println!("                        │   egress │  ingress");
    println!("────────────────────────┼──────────┼─────────");
    println!(
        " ACL rules per edge     │ {:>8.1} │ {:>8.1}",
        egress.rules_per_edge, ingress.rules_per_edge
    );
    println!(
        " overlay bytes carried  │ {:>8} │ {:>8}",
        egress.overlay_bytes, ingress.overlay_bytes
    );
    println!(
        " drops at destination   │ {:>8} │ {:>8}",
        egress.egress_drops, 0
    );
    println!(
        " drops at source        │ {:>8} │ {:>8}",
        0, ingress.ingress_drops
    );
    let wasted = egress.overlay_bytes.saturating_sub(ingress.overlay_bytes);
    println!(
        "\nbandwidth egress wastes on doomed traffic: {wasted} bytes \
         ({:.0}% of egress-mode overlay bytes)",
        wasted as f64 / egress.overlay_bytes.max(1) as f64 * 100.0
    );
    println!(
        "state ingress pays for it: {:.1}× the per-edge rules",
        ingress.rules_per_edge / egress.rules_per_edge.max(0.1)
    );
    println!("\npaper: SDA chooses egress — the measured waste is ≤0.2‰ in");
    println!("production (Fig. 12) while the state saving is structural.");

    assert!(ingress.rules_per_edge > egress.rules_per_edge);
    assert!(egress.overlay_bytes > ingress.overlay_bytes);
}
