//! Fig. 7c — route-request delay vs. **queries per second**.
//!
//! The paper sweeps 500/1000/1500/2000 q/s against the same server and
//! observes growing-but-tolerable delay: queueing, not lookup cost.
//! The harness also reproduces the §4.1 capacity check: at the
//! warehouse's 1600 q/s (800 moves × 2 queries each) the server keeps
//! up.
//!
//! Run with: `cargo run --release -p sda-bench --bin fig7c`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sda_bench::{fifo_sojourns, print_boxplot_row};
use sda_lisp::REQUEST_SERVICE;
use sda_simnet::{SimTime, Summary};
use sda_workloads::PoissonArrivals;

fn jitter(rng: &mut SmallRng) -> f64 {
    use rand::Rng;
    let u: f64 = rng.gen::<f64>().max(1e-12);
    1.0 + ((-u.ln()) * 0.18).min(2.0)
}

fn run(rate: f64, seed: u64) -> Vec<f64> {
    let mut arrivals = PoissonArrivals::new(rate, SimTime::ZERO, seed);
    let times: Vec<f64> = (0..20_000)
        .map(|_| arrivals.next_arrival().as_secs_f64())
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0DE);
    let base = REQUEST_SERVICE.as_secs_f64();
    fifo_sojourns(&times, || base * jitter(&mut rng))
}

fn main() {
    println!("Fig. 7c — route-request delay vs offered load (10k routes)");
    println!("values relative to the minimum of all samples\n");

    let runs: Vec<(u32, Vec<f64>)> = [500u32, 1_000, 1_500, 2_000]
        .iter()
        .map(|&r| (r, run(f64::from(r), u64::from(r))))
        .collect();
    let baseline = runs
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(f64::INFINITY, f64::min);

    println!(" queries/s │  relative delay (boxplot)");
    println!("───────────┼─────────────────────────────────────────────────");
    for (rate, samples) in &runs {
        let s = Summary::of(samples).unwrap();
        print_boxplot_row(&rate.to_string(), &s, baseline);
    }

    // §4.1: the warehouse needs 800 moves/s × 2 queries = 1600 q/s.
    let wh = run(1_600.0, 99);
    let s = Summary::of(&wh).unwrap();
    println!("\n§4.1 capacity check at 1600 q/s (warehouse requirement):");
    print_boxplot_row("1600", &s, baseline);
    assert!(
        s.p95 / baseline < 10.0,
        "server must keep up at the warehouse load"
    );
    println!("\npaper: median grows ≈1.1→2.25× from 500→2000 q/s; 1600 q/s is sustainable");
}
