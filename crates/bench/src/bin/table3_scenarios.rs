//! Tables 3 & 4 — the deployment inventory, printed from the same
//! scenario constructors every experiment uses (so the table can never
//! drift from the code).
//!
//! Run with: `cargo run -p sda-bench --bin table3_scenarios`

use sda_workloads::campus::CampusParams;
use sda_workloads::warehouse::WarehouseParams;

fn main() {
    let a = CampusParams::building_a();
    let b = CampusParams::building_b();
    let w = WarehouseParams::default();

    println!("Table 3 — deployments used for evaluation\n");
    println!(" Deployment  │ #Border │ #Edge │ Endpoints");
    println!("─────────────┼─────────┼───────┼──────────");
    println!(
        " Building A  │ {:>7} │ {:>5} │ {:>9}",
        a.borders, a.edges, a.endpoints
    );
    println!(
        " Building B  │ {:>7} │ {:>5} │ {:>9}",
        b.borders, b.edges, b.endpoints
    );
    println!(
        " Warehouse   │ {:>7} │ {:>5} │ {:>9}  (emulated)",
        1, w.edges, w.hosts
    );

    println!("\nTable 4 — campus deployment details\n");
    println!("                 │ Bldg. A │ Bldg. B");
    println!("─────────────────┼─────────┼────────");
    println!(" Border routers  │ {:>7} │ {:>7}", a.borders, b.borders);
    println!(" Edge routers    │ {:>7} │ {:>7}", a.edges, b.edges);
    println!(" Floors          │ {:>7} │ {:>7}", 3, 3);
    println!(" AP per floor    │ {:>7} │ {:>7}", 40, 40);
    println!(" Total AP        │ {:>7} │ {:>7}", 120, 120);
    println!(
        " AP per edge     │ {:>7} │ {:>7}",
        120 / a.edges,
        120 / b.edges
    );

    println!(
        "\nwarehouse workload (§4.3): {} moves/s — {:.1}% of endpoints move per second",
        w.moves_per_sec,
        w.moves_per_sec / w.hosts as f64 * 100.0
    );
}
