//! Fig. 12 — per-mille hits on drop rules over all ACL hits, for three
//! devices of a ~11,000-endpoint deployment: a VPN gateway, a branch
//! router and a campus edge, over 5 days of egress enforcement.
//!
//! The paper's observation: drops are *rare* (worst case 2 per 10k
//! packets) because endpoints are humans — "when endpoints realize they
//! cannot access this particular destination, they stop requesting it".
//! The VPN gateway shows more drops because remote users "present a
//! different usage pattern from the users in the office".
//!
//! Model: each device enforces the same group ACL (`sda-core`'s
//! `GroupAcl` — the exact egress stage-2 structure). Users run flows to
//! their habitual allowed destinations; occasionally someone tries a
//! forbidden destination and gives up after a few retries; a mid-week
//! policy update flips one pair to deny, causing the paper's "transient
//! period with an increase in drops" until users learn.
//!
//! Run with: `cargo run --release -p sda-bench --bin fig12_drop_permille`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sda_core::GroupAcl;
use sda_policy::{Action, GroupRule, RuleSubset};
use sda_types::{GroupId, VnId};

struct Profile {
    name: &'static str,
    endpoints: u32,
    /// Flows per endpoint per day.
    flows_per_day: u32,
    /// Fraction of endpoints that ever poke at forbidden destinations
    /// (remote users explore more).
    explorer_share: f64,
    /// Retries before a human gives up on a denied destination.
    retries: u32,
}

const PROFILES: &[Profile] = &[
    Profile {
        name: "VPN",
        endpoints: 3_000,
        flows_per_day: 40,
        explorer_share: 0.012,
        retries: 3,
    },
    Profile {
        name: "Branch",
        endpoints: 3_000,
        flows_per_day: 60,
        explorer_share: 0.004,
        retries: 3,
    },
    Profile {
        name: "Campus",
        endpoints: 5_000,
        flows_per_day: 80,
        explorer_share: 0.005,
        retries: 3,
    },
];

fn vn() -> VnId {
    VnId::new(1).unwrap()
}

fn main() {
    println!("Fig. 12 — permille hits on drop rules over all hits (5 days)\n");
    let days = 5u32;
    // 20 destination groups; 17 allowed to everyone, 3 denied.
    let allowed: Vec<GroupId> = (1..=17).map(GroupId).collect();
    let denied: Vec<GroupId> = (18..=20).map(GroupId).collect();
    let user_group = GroupId(100);

    println!(" device │ endpoints │ total hits │ drops │ permille │ paper(≈)");
    println!("────────┼───────────┼────────────┼───────┼──────────┼─────────");
    let paper = [0.18, 0.06, 0.04];
    for (profile, paper_pm) in PROFILES.iter().zip(paper) {
        let mut rng = SmallRng::seed_from_u64(profile.endpoints as u64);
        let mut acl = GroupAcl::new();
        let rules: Vec<(VnId, GroupRule)> = allowed
            .iter()
            .map(|g| {
                (
                    vn(),
                    GroupRule {
                        src: user_group,
                        dst: *g,
                        action: Action::Allow,
                    },
                )
            })
            .chain(denied.iter().map(|g| {
                (
                    vn(),
                    GroupRule {
                        src: user_group,
                        dst: *g,
                        action: Action::Deny,
                    },
                )
            }))
            .collect();
        acl.install(&RuleSubset { version: 1, rules });

        // Explorers: the small population that pokes at forbidden
        // destinations (each gives up after `retries` attempts).
        let mut explorer_tries: Vec<u32> = (0..profile.endpoints as usize)
            .map(|_| {
                if rng.gen::<f64>() < profile.explorer_share {
                    profile.retries
                } else {
                    0
                }
            })
            .collect();

        // Mid-run policy update: group 17 becomes denied on day 3. Only
        // its habitual users (1.5%) see the transient, and they learn.
        let mut uses_17: Vec<bool> = (0..profile.endpoints as usize)
            .map(|_| rng.gen::<f64>() < 0.015)
            .collect();

        for day in 0..days {
            if day == 2 {
                acl.install(&RuleSubset {
                    version: 2,
                    rules: vec![(
                        vn(),
                        GroupRule {
                            src: user_group,
                            dst: GroupId(17),
                            action: Action::Deny,
                        },
                    )],
                });
            }
            for ep in 0..profile.endpoints as usize {
                for _ in 0..profile.flows_per_day {
                    // Exploration: a poke at a denied group, while the
                    // explorer's patience lasts (~once a day).
                    if explorer_tries[ep] > 0
                        && rng.gen::<f64>() < 1.0 / f64::from(profile.flows_per_day)
                    {
                        let dst = denied[rng.gen_range(0..denied.len())];
                        acl.enforce(vn(), user_group, dst, Action::Deny);
                        explorer_tries[ep] -= 1;
                        continue;
                    }
                    // Habitual flow to an allowed destination.
                    let idx = rng.gen_range(0..allowed.len());
                    let dst = allowed[idx];
                    if day >= 2 && dst == GroupId(17) && uses_17[ep] {
                        // Transient after the policy update: a couple of
                        // drops until the human stops trying.
                        acl.enforce(vn(), user_group, dst, Action::Deny);
                        if rng.gen::<f64>() < 0.6 {
                            uses_17[ep] = false;
                        }
                        continue;
                    }
                    let dst = if dst == GroupId(17) {
                        allowed[(idx + 1) % 17]
                    } else {
                        dst
                    };
                    acl.enforce(vn(), user_group, dst, Action::Deny);
                }
            }
        }

        let (allowed_hits, drops) = acl.counters();
        let permille = acl.drop_permille().unwrap();
        println!(
            " {:<6} │ {:>9} │ {:>10} │ {:>5} │ {:>8.3} │ {:>7.2}",
            profile.name,
            profile.endpoints,
            allowed_hits + drops,
            drops,
            permille,
            paper_pm,
        );
        assert!(permille < 1.0, "drop rate must stay well below 1‰");
    }
    println!("\npaper: worst case ≈0.18‰ (VPN) — 2 of every 10k packets;");
    println!("egress enforcement wastes negligible bandwidth in practice.");
}
