//! Fig. 7b — routing-server **route-update** delay vs. number of
//! configured routes (the Map-Register path), at 800 updates/s.
//!
//! Same methodology as `fig7a`; the update service time sits slightly
//! above the request's, and stays flat across table sizes.
//!
//! Run with: `cargo run --release -p sda-bench --bin fig7b`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sda_bench::{fifo_sojourns, print_boxplot_row};
use sda_lisp::{MapServer, UPDATE_SERVICE};
use sda_simnet::{SimTime, Summary};
use sda_types::{Eid, Rloc, VnId};
use sda_wire::lisp::Message;
use std::net::Ipv4Addr;

fn eid(i: u32) -> Eid {
    Eid::V4(Ipv4Addr::from(0x0A00_0000 | i))
}

fn vn() -> VnId {
    VnId::new(100).unwrap()
}

fn run(routes: u32, rate: f64, seed: u64) -> Vec<f64> {
    // Preload, then verify updates against the real server: each update
    // targets a different route (paper's methodology).
    let mut server = MapServer::new(Rloc::for_router_index(65_000));
    for i in 0..routes {
        server.handle(
            Message::MapRegister {
                nonce: u64::from(i),
                vn: vn(),
                eid: eid(i),
                rloc: Rloc::for_router_index((i % 200) as u16),
                ttl_secs: 0,
                want_notify: false,
            },
            SimTime::ZERO,
        );
    }
    let updates = 10_000u32;
    for q in 0..updates.min(routes) {
        server.handle(
            Message::MapRegister {
                nonce: u64::from(q),
                vn: vn(),
                eid: eid(q % routes),
                rloc: Rloc::for_router_index(((q + 1) % 200) as u16),
                ttl_secs: 0,
                want_notify: false,
            },
            SimTime::ZERO,
        );
    }
    assert_eq!(
        server.db().len() as u32,
        routes,
        "updates must not grow the table"
    );

    let mut arrivals = sda_workloads::PoissonArrivals::new(rate, SimTime::ZERO, seed);
    let times: Vec<f64> = (0..updates)
        .map(|_| arrivals.next_arrival().as_secs_f64())
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xFEED);
    let base = UPDATE_SERVICE.as_secs_f64();
    fifo_sojourns(&times, || base * jitter(&mut rng))
}

fn jitter(rng: &mut SmallRng) -> f64 {
    use rand::Rng;
    let u: f64 = rng.gen::<f64>().max(1e-12);
    1.0 + ((-u.ln()) * 0.18).min(2.0)
}

fn main() {
    println!("Fig. 7b — route-update delay vs configured routes (800 u/s)");
    println!("values relative to the minimum delay of a 1-route server\n");
    let baseline = run(1, 800.0, 2).into_iter().fold(f64::INFINITY, f64::min);
    println!("    routes │  relative delay (boxplot)");
    println!("───────────┼─────────────────────────────────────────────────");
    for routes in [10u32, 100, 1_000, 10_000] {
        let samples = run(routes, 800.0, 100 + u64::from(routes));
        let s = Summary::of(&samples).unwrap();
        print_boxplot_row(&routes.to_string(), &s, baseline);
    }
    println!("\npaper: medians ≈1.2–1.4×, whiskers ≈1.0–1.8×, flat across sizes");
}
