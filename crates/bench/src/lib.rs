//! # sda-bench
//!
//! The experiment harness: one target per table/figure of the paper's
//! evaluation (see DESIGN.md §4 for the full index).
//!
//! * Criterion micro-benchmarks (`benches/`):
//!   - `fig7_routing_server` — Fig. 7a/7b: map-server request/update
//!     latency vs. stored-route count (flat, Patricia property).
//! * Figure/table harness binaries (`src/bin/`):
//!   - `fig7a`, `fig7b` — boxplot rows from the simulated server.
//!   - `fig7c` — delay vs. offered load (queueing).
//!   - `fig9_fib_timeseries` — border vs. edge FIB over weeks.
//!   - `table3_scenarios` — deployment inventory.
//!   - `table5_fib_average` — 5-week FIB averages, day/night split.
//!   - `fig11_handover_cdf` — reactive vs. proactive handover CDF.
//!   - `fig12_drop_permille` — egress drop rates across profiles.
//!   - `ablation_*` — §5.3/§5.4/§3.2.2/§4.1 design-choice studies.
//!
//! This library hosts shared output helpers so every binary prints the
//! same table/CSV shapes.

use sda_simnet::Summary;

/// Prints a boxplot summary row in the Fig. 7 style: values relative to
/// a `baseline` (e.g. the minimum of the 1-route configuration).
pub fn print_boxplot_row(label: &str, summary: &Summary, baseline: f64) {
    println!(
        "{label:>10} │ p05 {:>6.2} │ p25 {:>6.2} │ median {:>6.2} │ p75 {:>6.2} │ p95 {:>6.2} │ n={}",
        summary.p05 / baseline,
        summary.p25 / baseline,
        summary.p50 / baseline,
        summary.p75 / baseline,
        summary.p95 / baseline,
        summary.count,
    );
}

/// Prints a two-series CDF table (the Fig. 11 shape), relative to `unit`.
pub fn print_cdf_pair(a_name: &str, a: &[f64], b_name: &str, b: &[f64], unit: f64, points: usize) {
    println!(" frac │ {a_name:>8} │ {b_name:>8}");
    println!("──────┼──────────┼─────────");
    let ca = Summary::cdf(a, points);
    let cb = Summary::cdf(b, points);
    for (pa, pb) in ca.iter().zip(cb.iter()) {
        println!(
            " {:>4.2} │ {:>8.2} │ {:>8.2}",
            pa.1,
            pa.0 / unit,
            pb.0 / unit
        );
    }
}

/// Formats a mean with the day/night split used by Table 5.
pub struct DayNight {
    /// Mean over all samples.
    pub all: f64,
    /// Mean over working hours (9:00–19:00, paper's definition).
    pub day: f64,
    /// Mean over the rest.
    pub night: f64,
}

/// Splits an hourly series into Table 5's all/day/night means.
/// `hour_of(t)` maps a sample time to the hour-of-day.
pub fn day_night_split(series: &[(f64, f64)]) -> Option<DayNight> {
    if series.is_empty() {
        return None;
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let all: Vec<f64> = series.iter().map(|(_, v)| *v).collect();
    let day: Vec<f64> = series
        .iter()
        .filter(|(h, _)| (9.0..19.0).contains(&(h % 24.0)))
        .map(|(_, v)| *v)
        .collect();
    let night: Vec<f64> = series
        .iter()
        .filter(|(h, _)| !(9.0..19.0).contains(&(h % 24.0)))
        .map(|(_, v)| *v)
        .collect();
    Some(DayNight {
        all: mean(&all),
        day: if day.is_empty() { 0.0 } else { mean(&day) },
        night: if night.is_empty() { 0.0 } else { mean(&night) },
    })
}

/// Simulates a single-server FIFO queue: for each arrival instant
/// (seconds), draws a service time and returns the sojourn time
/// (wait + service). This is exactly how the simulator's per-node
/// control CPU behaves; the standalone form lets the Fig. 7 harnesses
/// sweep offered load without building a whole fabric.
pub fn fifo_sojourns(arrivals: &[f64], mut service: impl FnMut() -> f64) -> Vec<f64> {
    let mut free_at = 0.0f64;
    arrivals
        .iter()
        .map(|&t| {
            let start = free_at.max(t);
            let s = service();
            free_at = start + s;
            free_at - t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_sojourn_accounts_waiting() {
        // Three arrivals at t=0, fixed 1s service: sojourns 1, 2, 3.
        let s = fifo_sojourns(&[0.0, 0.0, 0.0], || 1.0);
        assert_eq!(s, vec![1.0, 2.0, 3.0]);
        // Spaced-out arrivals never wait.
        let s = fifo_sojourns(&[0.0, 10.0, 20.0], || 1.0);
        assert_eq!(s, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn day_night_split_respects_hours() {
        // Value 100 during 9–19, 10 otherwise.
        let series: Vec<(f64, f64)> = (0..48)
            .map(|h| {
                let hour = h as f64;
                let v = if (9.0..19.0).contains(&(hour % 24.0)) {
                    100.0
                } else {
                    10.0
                };
                (hour, v)
            })
            .collect();
        let dn = day_night_split(&series).unwrap();
        assert_eq!(dn.day, 100.0);
        assert_eq!(dn.night, 10.0);
        assert!(dn.all > 10.0 && dn.all < 100.0);
    }

    #[test]
    fn empty_series_yields_none() {
        assert!(day_night_split(&[]).is_none());
    }
}
