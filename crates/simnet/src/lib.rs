//! # sda-simnet
//!
//! A deterministic discrete-event network simulator: the substrate every
//! experiment in this reproduction runs on (the paper ran on physical
//! testbeds and a commercial traffic generator; see DESIGN.md §2 for the
//! substitution argument).
//!
//! Design:
//!
//! * **Single-threaded, seeded, deterministic.** The event queue orders by
//!   `(time, sequence)`; ties break by insertion order, and all randomness
//!   flows from one [`rand::rngs::SmallRng`] seeded per scenario, so a run
//!   is a pure function of `(scenario, seed)`.
//! * **Poll-free node model.** Nodes implement [`Node`] and react to
//!   delivered messages and timers; they emit new messages through the
//!   [`Context`] handed to every callback (the smoltcp-style "state
//!   machine + explicit environment" shape, adapted from event-driven
//!   stack design).
//! * **Control-plane queueing.** Each node models a single-server FIFO
//!   control CPU: handlers call [`Context::busy`] to account processing
//!   time, and deliveries that arrive while the CPU is busy wait in line.
//!   This is what makes *load* translate into *convergence delay
//!   variance*, the effect behind Fig. 11's BGP-vs-LISP gap.
//! * **Links.** Latency per directed pair with a default, plus optional
//!   deterministic-seeded loss.
//!
//! ## Fault model
//!
//! Chaos experiments are scripted through a [`FaultPlan`] — a list of
//! `(time, `[`Fault`]`)` pairs scheduled into the ordinary event queue
//! with [`Simulator::schedule_faults`], so fault timing is subject to the
//! same total order and the same seeded RNG as everything else: a chaos
//! run replays bit-identically from `(scenario, seed, plan)`.
//!
//! * **Crash / restart** ([`Fault::Crash`], [`Fault::Restart`]). While a
//!   node is down, every delivery addressed to it — including messages
//!   already in flight — is dropped (`simnet.fault_msg_drops`) and its
//!   control-CPU backlog is discarded. Timers still fire, so periodic
//!   re-arm discipline survives the outage; the node is told about both
//!   transitions via [`Node::on_fault`] and models volatile-state loss
//!   there (a restarted node must rebuild from whatever it considers
//!   non-volatile, e.g. configuration and local endpoint inventory).
//! * **Partition / heal** ([`Fault::Partition`], [`Fault::Heal`]). Cuts
//!   an unordered node pair: sends in either direction are dropped at
//!   the sender's link (`simnet.partition_drops`) until healed.
//! * **Loss / latency spikes** ([`Fault::Loss`], [`Fault::Latency`],
//!   [`Fault::DefaultLoss`]). Rewrite link parameters on a schedule,
//!   per-pair or fabric-wide; loss draws come from the scenario RNG, so
//!   which packets die is deterministic per seed.
//! * **Shard faults** ([`Fault::ShardCrash`], [`Fault::ShardRestart`],
//!   [`Fault::ShardPartition`], [`Fault::ShardHeal`]). Scoped to one
//!   internal shard of a node that models a partitioned service: the
//!   node stays up and keeps receiving — the fault is dispatched to
//!   [`Node::on_fault`] and the node decides what a downed shard means
//!   (the partitioned map-server drops that shard's owner-routed
//!   traffic while the other shards keep serving).
//!
//! Fault activity is observable via the `simnet.faults_injected`,
//! `simnet.node_crashes`, `simnet.node_restarts`, `simnet.links_cut`,
//! `simnet.links_healed`, `simnet.fault_msg_drops`,
//! `simnet.partition_drops`, `simnet.shard_crashes`,
//! `simnet.shard_restarts`, `simnet.shard_partitions` and
//! `simnet.shard_heals` counters.
//!
//! ## Overload model
//!
//! The single-server control CPU gives every node an implicit queue —
//! and an unbounded one turns saturation into silent infinite backlog.
//! [`Simulator::set_ingress_cap`] bounds it: at most `cap` deliveries
//! may wait for a node's CPU at once, and a delivery that arrives at a
//! full queue is **tail-dropped** at the receiver (counted per node in
//! [`Simulator::ingress_drops`] and fabric-wide in
//! `simnet.ingress_drops`). Messages being *processed* and timer
//! callbacks never occupy queue slots. Per-node observability:
//! [`Simulator::ingress_depth`] (current),
//! [`Simulator::ingress_peak`] (high-water mark since the last
//! [`Simulator::reset_ingress_peaks`]) and
//! [`Simulator::ingress_drops`]. Depth and peak are tracked for
//! unbounded nodes too, so a scenario can *measure* a queue it chose
//! not to cap.
//!
//! A tail-drop is indistinguishable from link loss to the sender — by
//! design: saturation recovery rides the same retransmit machinery as
//! loss recovery. Back-pressure with an explicit signal (shed-load
//! `ServerBusy` replies with a retry-after hint) is layered above, in
//! `sda-ctrl`'s admission control, where the receiver still has the
//! CPU to say no cheaply.
//!
//! The simulator is generic over the message type `M`, so `sda-core`,
//! `sda-bgp` and tests each bring their own protocol enums.

pub mod fault;
pub mod metrics;
pub mod sim;
pub mod time;

pub use fault::{Fault, FaultEvent, FaultPlan};
pub use metrics::{Metrics, Summary};
pub use sim::{Context, Node, NodeId, Simulator};
pub use time::{SimDuration, SimTime};
