//! # sda-simnet
//!
//! A deterministic discrete-event network simulator: the substrate every
//! experiment in this reproduction runs on (the paper ran on physical
//! testbeds and a commercial traffic generator; see DESIGN.md §2 for the
//! substitution argument).
//!
//! Design:
//!
//! * **Single-threaded, seeded, deterministic.** The event queue orders by
//!   `(time, sequence)`; ties break by insertion order, and all randomness
//!   flows from one [`rand::rngs::SmallRng`] seeded per scenario, so a run
//!   is a pure function of `(scenario, seed)`.
//! * **Poll-free node model.** Nodes implement [`Node`] and react to
//!   delivered messages and timers; they emit new messages through the
//!   [`Context`] handed to every callback (the smoltcp-style "state
//!   machine + explicit environment" shape, adapted from event-driven
//!   stack design).
//! * **Control-plane queueing.** Each node models a single-server FIFO
//!   control CPU: handlers call [`Context::busy`] to account processing
//!   time, and deliveries that arrive while the CPU is busy wait in line.
//!   This is what makes *load* translate into *convergence delay
//!   variance*, the effect behind Fig. 11's BGP-vs-LISP gap.
//! * **Links.** Latency per directed pair with a default, plus optional
//!   deterministic-seeded loss.
//!
//! The simulator is generic over the message type `M`, so `sda-core`,
//! `sda-bgp` and tests each bring their own protocol enums.

pub mod metrics;
pub mod sim;
pub mod time;

pub use metrics::{Metrics, Summary};
pub use sim::{Context, Node, NodeId, Simulator};
pub use time::{SimDuration, SimTime};
