//! Simulated time: nanosecond-resolution instants and durations.
//!
//! Experiments span from microseconds (a trie lookup) to five simulated
//! weeks (Table 5), so `u64` nanoseconds — good for ~584 simulated years —
//! covers everything with a single representation.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A span of simulated time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// From whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration::from_secs(m * 60)
    }

    /// From whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration::from_secs(h * 3600)
    }

    /// From whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration::from_hours(d * 24)
    }

    /// From fractional seconds (workload generators produce these).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite());
        SimDuration((s * 1e9).round() as u64)
    }

    /// Total nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Total microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Total milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating multiply by an integer factor.
    pub const fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Checked division into `k` equal parts.
    pub const fn div(self, k: u64) -> Self {
        SimDuration(self.0 / k)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}µs", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// From nanoseconds since epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    /// Panics (in debug) if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self.0 >= earlier.0, "time went backwards");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating duration since `earlier` (zero if later).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn float_roundtrip() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_millis(), 1500);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(2);
        assert_eq!(t1.since(t0), SimDuration::from_secs(2));
        assert_eq!(t1 - t0, SimDuration::from_secs(2));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000µs");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn five_simulated_weeks_fit() {
        let five_weeks = SimDuration::from_days(35);
        let t = SimTime::ZERO + five_weeks;
        assert!(t.as_nanos() > 0);
        assert_eq!(t.since(SimTime::ZERO), five_weeks);
    }
}
