//! Metric collection: counters, sample sets and time series.
//!
//! Every figure in the paper reduces to one of three shapes:
//!
//! * **counters** — e.g. ACL drops vs total packets (Fig. 12),
//! * **sample sets** with percentile summaries — delays (Fig. 7, Fig. 11),
//! * **time series** — FIB entries over days (Fig. 9).
//!
//! [`Metrics`] stores all three by name; [`Summary`] computes the boxplot
//! statistics the paper plots (median, quartiles, 95% whiskers) and the
//! CDF used in Fig. 11.

use std::collections::HashMap;

use crate::time::SimTime;

/// Scenario-wide metric sink.
#[derive(Default, Debug)]
pub struct Metrics {
    counters: HashMap<String, u64>,
    samples: HashMap<String, Vec<f64>>,
    series: HashMap<String, Vec<(SimTime, f64)>>,
}

impl Metrics {
    /// Increments counter `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to counter `name`.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_default() += delta;
    }

    /// Reads counter `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one observation into sample set `name`.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.samples
            .entry(name.to_string())
            .or_default()
            .push(value);
    }

    /// All observations of sample set `name`.
    pub fn samples(&self, name: &str) -> &[f64] {
        self.samples.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Appends a `(time, value)` point to series `name`.
    pub fn record(&mut self, name: &str, at: SimTime, value: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .push((at, value));
    }

    /// The points of series `name`.
    pub fn series(&self, name: &str) -> &[(SimTime, f64)] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Names of all sample sets (sorted, for stable output).
    pub fn sample_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.samples.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Summary statistics of sample set `name` (None when empty).
    pub fn summary(&self, name: &str) -> Option<Summary> {
        Summary::of(self.samples(name))
    }
}

/// Boxplot-style summary of a sample set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Smallest observation.
    pub min: f64,
    /// 5th percentile (lower 95%-whisker as in the paper's boxplots).
    pub p05: f64,
    /// First quartile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// Third quartile.
    pub p75: f64,
    /// 95th percentile (upper whisker).
    pub p95: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Computes a summary; `None` for an empty slice.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = v.len();
        let pct = |p: f64| -> f64 {
            // Nearest-rank with linear interpolation.
            let rank = p * (n - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            if lo == hi {
                v[lo]
            } else {
                v[lo] + (v[hi] - v[lo]) * (rank - lo as f64)
            }
        };
        Some(Summary {
            count: n,
            min: v[0],
            p05: pct(0.05),
            p25: pct(0.25),
            p50: pct(0.50),
            p75: pct(0.75),
            p95: pct(0.95),
            max: v[n - 1],
            mean: v.iter().sum::<f64>() / n as f64,
        })
    }

    /// Renders the empirical CDF of `samples` at `points` evenly spaced
    /// quantile positions, as `(value, cumulative_fraction)` pairs —
    /// the Fig. 11 plot format.
    pub fn cdf(samples: &[f64], points: usize) -> Vec<(f64, f64)> {
        if samples.is_empty() || points == 0 {
            return Vec::new();
        }
        let mut v: Vec<f64> = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = v.len();
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                let idx = ((frac * n as f64).ceil() as usize).clamp(1, n) - 1;
                (v[idx], frac)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::default();
        assert_eq!(m.counter("x"), 0);
        m.incr("x");
        m.add("x", 4);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn summary_of_known_distribution() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!(s.p25 < s.p50 && s.p50 < s.p75);
        assert!(s.p05 < s.p25 && s.p75 < s.p95);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
        let m = Metrics::default();
        assert!(m.summary("nope").is_none());
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.min, 7.0);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let samples: Vec<f64> = (0..1000).map(|i| (i % 37) as f64).collect();
        let cdf = Summary::cdf(&samples, 20);
        assert_eq!(cdf.len(), 20);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0, "values must be nondecreasing");
            assert!(w[0].1 < w[1].1, "fractions must increase");
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
        assert_eq!(cdf.last().unwrap().0, 36.0);
    }

    #[test]
    fn series_preserve_order() {
        let mut m = Metrics::default();
        m.record("fib", SimTime::from_nanos(1), 10.0);
        m.record("fib", SimTime::from_nanos(2), 12.0);
        let s = m.series("fib");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].1, 10.0);
        assert_eq!(s[1].1, 12.0);
    }

    #[test]
    fn sample_names_sorted() {
        let mut m = Metrics::default();
        m.observe("b", 1.0);
        m.observe("a", 1.0);
        assert_eq!(m.sample_names(), vec!["a", "b"]);
    }
}
