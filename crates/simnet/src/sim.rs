//! The event loop, node trait and delivery machinery.

use std::collections::{BinaryHeap, HashMap, HashSet};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fault::{Fault, FaultEvent, FaultPlan};
use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};

/// Identifies a node inside one [`Simulator`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Pseudo-sender for externally injected events (workload drivers).
    pub const EXTERNAL: NodeId = NodeId(u32::MAX);
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if *self == NodeId::EXTERNAL {
            f.write_str("ext")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// A simulated device: reacts to messages and timers.
///
/// Handlers receive a [`Context`] for sending, timing and metrics; they
/// must not block or sleep — time only advances through the event queue.
pub trait Node<M> {
    /// A message from `from` has been delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// A timer set earlier with [`Context::set_timer`] has fired.
    /// `token` is the caller-chosen discriminator.
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, token: u64) {
        let _ = (ctx, token);
    }

    /// A scheduled fault hit this node: [`FaultEvent::Crash`] (about to
    /// lose deliveries; volatile state is gone) or [`FaultEvent::Restart`]
    /// (back up — rebuild from non-volatile state). Default: no-op, for
    /// nodes that never appear in a [`FaultPlan`].
    fn on_fault(&mut self, ctx: &mut Context<'_, M>, fault: FaultEvent) {
        let _ = (ctx, fault);
    }

    /// Downcast hook: concrete node types that want post-run inspection
    /// return `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Mutable downcast hook (fault injection in scenarios).
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

enum EventKind<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
        /// True once the delivery has been parked in the destination's
        /// bounded ingress queue (it holds a slot and is never dropped
        /// by the cap again).
        queued: bool,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    Fault(Fault),
}

struct Event<M> {
    time: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Directed-link parameters.
#[derive(Clone, Copy, Debug)]
struct LinkParams {
    latency: SimDuration,
    loss: f64,
}

/// The environment handed to node callbacks.
pub struct Context<'a, M> {
    now: SimTime,
    self_id: NodeId,
    /// Outgoing messages: (delay-before-link, to, msg).
    outbox: Vec<(SimDuration, NodeId, M)>,
    /// Timers to arm: (delay, token).
    timers: Vec<(SimDuration, u64)>,
    /// Processing time to account on this node's control CPU.
    busy_for: SimDuration,
    rng: &'a mut SmallRng,
    metrics: &'a mut Metrics,
}

impl<'a, M> Context<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Sends `msg` to `to` over the (simulated) wire now.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((SimDuration::ZERO, to, msg));
    }

    /// Sends `msg` to `to` after an extra local delay (e.g. retry backoff).
    pub fn send_after(&mut self, delay: SimDuration, to: NodeId, msg: M) {
        self.outbox.push((delay, to, msg));
    }

    /// Arms a timer that fires on this node after `delay` with `token`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.timers.push((delay, token));
    }

    /// Accounts `d` of processing time on this node's single-server
    /// control CPU: messages arriving while the CPU is busy queue up.
    pub fn busy(&mut self, d: SimDuration) {
        self.busy_for = self.busy_for + d;
    }

    /// Deterministic per-scenario RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Scenario-wide metric sink.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }
}

/// The discrete-event simulator.
///
/// Generic over the protocol message type `M`. Nodes are added once and
/// addressed by their [`NodeId`] (dense, starting at 0).
pub struct Simulator<M> {
    nodes: Vec<Box<dyn Node<M>>>,
    queue: BinaryHeap<Event<M>>,
    seq: u64,
    now: SimTime,
    default_latency: SimDuration,
    default_loss: f64,
    links: HashMap<(NodeId, NodeId), LinkParams>,
    /// Nodes currently crashed by a [`Fault::Crash`].
    node_down: Vec<bool>,
    /// Unordered pairs currently cut by a [`Fault::Partition`].
    partitioned: HashSet<(NodeId, NodeId)>,
    /// Per-node control CPU availability.
    busy_until: Vec<SimTime>,
    /// Per-node ingress queue bound (`usize::MAX` = unbounded).
    ingress_cap: Vec<usize>,
    /// Deliveries currently parked behind each node's busy CPU.
    ingress_depth: Vec<u32>,
    /// High-water mark of `ingress_depth` since the last reset.
    ingress_peak: Vec<u32>,
    /// Deliveries tail-dropped at each node's full ingress queue.
    ingress_drops: Vec<u64>,
    rng: SmallRng,
    metrics: Metrics,
    events_processed: u64,
}

impl<M> Simulator<M> {
    /// Creates a simulator seeded with `seed`; link latency defaults to
    /// 50 µs (a campus-scale RTT/2).
    pub fn new(seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            default_latency: SimDuration::from_micros(50),
            default_loss: 0.0,
            links: HashMap::new(),
            node_down: Vec::new(),
            partitioned: HashSet::new(),
            busy_until: Vec::new(),
            ingress_cap: Vec::new(),
            ingress_depth: Vec::new(),
            ingress_peak: Vec::new(),
            ingress_drops: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            metrics: Metrics::default(),
            events_processed: 0,
        }
    }

    /// Changes the default link latency.
    pub fn set_default_latency(&mut self, d: SimDuration) {
        self.default_latency = d;
    }

    /// Changes the loss probability applied to links without explicit
    /// parameters (also reachable on a schedule via
    /// [`Fault::DefaultLoss`]).
    pub fn set_default_loss(&mut self, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.default_loss = loss;
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node<M>>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.node_down.push(false);
        self.busy_until.push(SimTime::ZERO);
        self.ingress_cap.push(usize::MAX);
        self.ingress_depth.push(0);
        self.ingress_peak.push(0);
        self.ingress_drops.push(0);
        id
    }

    /// Bounds `node`'s ingress queue: at most `cap` deliveries may wait
    /// behind its busy CPU; further arrivals while the queue is full are
    /// tail-dropped (counted in [`Simulator::ingress_drops`] and the
    /// `simnet.ingress_drops` metric). Nodes default to unbounded.
    pub fn set_ingress_cap(&mut self, node: NodeId, cap: usize) {
        self.ingress_cap[node.0 as usize] = cap;
    }

    /// Deliveries currently parked behind `node`'s busy CPU.
    pub fn ingress_depth(&self, node: NodeId) -> u32 {
        self.ingress_depth[node.0 as usize]
    }

    /// High-water mark of `node`'s ingress queue since the last
    /// [`Simulator::reset_ingress_peaks`] (or the start of the run).
    pub fn ingress_peak(&self, node: NodeId) -> u32 {
        self.ingress_peak[node.0 as usize]
    }

    /// Deliveries tail-dropped at `node`'s full ingress queue.
    pub fn ingress_drops(&self, node: NodeId) -> u64 {
        self.ingress_drops[node.0 as usize]
    }

    /// Resets every node's ingress high-water mark to its current depth
    /// (so a later phase of a scenario can be measured in isolation).
    pub fn reset_ingress_peaks(&mut self) {
        for (peak, depth) in self.ingress_peak.iter_mut().zip(&self.ingress_depth) {
            *peak = *depth;
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Configures the directed link `from → to`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, latency: SimDuration, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.links.insert((from, to), LinkParams { latency, loss });
    }

    /// Configures both directions with the same parameters.
    pub fn set_link_bidir(&mut self, a: NodeId, b: NodeId, latency: SimDuration, loss: f64) {
        self.set_link(a, b, latency, loss);
        self.set_link(b, a, latency, loss);
    }

    /// Injects an external message to `to` at absolute time `at`
    /// (workload drivers use this; `from` is [`NodeId::EXTERNAL`]).
    pub fn inject_at(&mut self, at: SimTime, to: NodeId, msg: M) {
        assert!(at >= self.now, "cannot inject into the past");
        self.push(
            at,
            EventKind::Deliver {
                from: NodeId::EXTERNAL,
                to,
                msg,
                queued: false,
            },
        );
    }

    /// Arms a timer on `node` externally (scenario setup: nodes can only
    /// set timers from inside a callback, so builders use this to
    /// deliver an initial "kick" token).
    pub fn arm_timer_at(&mut self, at: SimTime, node: NodeId, token: u64) {
        assert!(at >= self.now, "cannot arm a timer in the past");
        self.push(at, EventKind::Timer { node, token });
    }

    /// Schedules every fault in `plan` as ordinary queue events.
    pub fn schedule_faults(&mut self, plan: &FaultPlan) {
        for &(at, fault) in plan.events() {
            self.inject_fault_at(at, fault);
        }
    }

    /// Schedules a single fault at absolute time `at`.
    pub fn inject_fault_at(&mut self, at: SimTime, fault: Fault) {
        assert!(at >= self.now, "cannot inject a fault into the past");
        self.push(at, EventKind::Fault(fault));
    }

    /// True while `id` is crashed (between a [`Fault::Crash`] and its
    /// [`Fault::Restart`]).
    pub fn is_node_down(&self, id: NodeId) -> bool {
        self.node_down[id.0 as usize]
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable access to collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to metrics (for scenario-level recording).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Borrow a node back (for post-run inspection). The caller supplies
    /// the concrete type.
    pub fn node(&self, id: NodeId) -> &dyn Node<M> {
        self.nodes[id.0 as usize].as_ref()
    }

    /// Mutable borrow of a node (scenario-level fault injection).
    pub fn node_mut(&mut self, id: NodeId) -> &mut dyn Node<M> {
        self.nodes[id.0 as usize].as_mut()
    }

    fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { time, seq, kind });
    }

    fn link(&self, from: NodeId, to: NodeId) -> LinkParams {
        self.links.get(&(from, to)).copied().unwrap_or(LinkParams {
            latency: self.default_latency,
            loss: self.default_loss,
        })
    }

    /// Canonical key for an unordered node pair.
    fn pair_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    fn apply_fault(&mut self, fault: Fault) {
        self.metrics.incr("simnet.faults_injected");
        match fault {
            Fault::Crash(node) => {
                let idx = node.0 as usize;
                assert!(idx < self.nodes.len(), "crash of unknown node {node}");
                self.node_down[idx] = true;
                // Whatever the control CPU was chewing on is gone.
                self.busy_until[idx] = self.now;
                self.metrics.incr("simnet.node_crashes");
                self.dispatch(node, |n, ctx| n.on_fault(ctx, FaultEvent::Crash));
            }
            Fault::Restart(node) => {
                let idx = node.0 as usize;
                assert!(idx < self.nodes.len(), "restart of unknown node {node}");
                self.node_down[idx] = false;
                self.metrics.incr("simnet.node_restarts");
                self.dispatch(node, |n, ctx| n.on_fault(ctx, FaultEvent::Restart));
            }
            Fault::Partition(a, b) => {
                self.partitioned.insert(Self::pair_key(a, b));
                self.metrics.incr("simnet.links_cut");
            }
            Fault::Heal(a, b) => {
                self.partitioned.remove(&Self::pair_key(a, b));
                self.metrics.incr("simnet.links_healed");
            }
            Fault::Loss { a, b, loss } => {
                assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
                for (from, to) in [(a, b), (b, a)] {
                    let latency = self.link(from, to).latency;
                    self.links.insert((from, to), LinkParams { latency, loss });
                }
            }
            Fault::Latency { a, b, latency } => {
                for (from, to) in [(a, b), (b, a)] {
                    let loss = self.link(from, to).loss;
                    self.links.insert((from, to), LinkParams { latency, loss });
                }
            }
            Fault::DefaultLoss(loss) => {
                assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
                self.default_loss = loss;
            }
            // Shard faults leave the node up (its other shards keep
            // serving); filtering deliveries for the dead shard is the
            // node's job, driven by the FaultEvent.
            Fault::ShardCrash(node, shard) => {
                self.metrics.incr("simnet.shard_crashes");
                self.dispatch(node, |n, ctx| {
                    n.on_fault(ctx, FaultEvent::ShardCrash(shard))
                });
            }
            Fault::ShardRestart(node, shard) => {
                self.metrics.incr("simnet.shard_restarts");
                self.dispatch(node, |n, ctx| {
                    n.on_fault(ctx, FaultEvent::ShardRestart(shard))
                });
            }
            Fault::ShardPartition(node, shard) => {
                self.metrics.incr("simnet.shard_partitions");
                self.dispatch(node, |n, ctx| {
                    n.on_fault(ctx, FaultEvent::ShardPartition(shard))
                });
            }
            Fault::ShardHeal(node, shard) => {
                self.metrics.incr("simnet.shard_heals");
                self.dispatch(node, |n, ctx| n.on_fault(ctx, FaultEvent::ShardHeal(shard)));
            }
        }
    }

    /// Processes a single event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        self.events_processed += 1;

        match ev.kind {
            EventKind::Deliver {
                from,
                to,
                msg,
                queued,
            } => {
                let idx = to.0 as usize;
                assert!(idx < self.nodes.len(), "delivery to unknown node {to}");
                // A crashed node receives nothing — in-flight included.
                if self.node_down[idx] {
                    if queued {
                        self.ingress_depth[idx] -= 1;
                    }
                    self.metrics.incr("simnet.fault_msg_drops");
                    return true;
                }
                // Single-server FIFO CPU: if the node is busy, requeue the
                // delivery at the moment it frees up (stable via seq order).
                // Fresh arrivals claim an ingress-queue slot first; a full
                // queue tail-drops them. Already-queued deliveries keep
                // their slot across re-parks.
                if self.busy_until[idx] > self.now {
                    if !queued {
                        if self.ingress_depth[idx] as usize >= self.ingress_cap[idx] {
                            self.ingress_drops[idx] += 1;
                            self.metrics.incr("simnet.ingress_drops");
                            return true;
                        }
                        self.ingress_depth[idx] += 1;
                        self.ingress_peak[idx] =
                            self.ingress_peak[idx].max(self.ingress_depth[idx]);
                    }
                    let at = self.busy_until[idx];
                    self.push(
                        at,
                        EventKind::Deliver {
                            from,
                            to,
                            msg,
                            queued: true,
                        },
                    );
                    return true;
                }
                if queued {
                    self.ingress_depth[idx] -= 1;
                }
                self.dispatch(to, |node, ctx| node.on_message(ctx, from, msg));
            }
            EventKind::Timer { node, token } => {
                // Timers still fire on crashed nodes: periodic re-arm
                // discipline must survive an outage (the node's own
                // failed-state handling decides what the tick does).
                self.dispatch(node, |n, ctx| n.on_timer(ctx, token));
            }
            EventKind::Fault(fault) => {
                self.apply_fault(fault);
            }
        }
        true
    }

    fn dispatch<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Node<M>, &mut Context<'_, M>),
    {
        let idx = id.0 as usize;
        let mut ctx = Context {
            now: self.now,
            self_id: id,
            outbox: Vec::new(),
            timers: Vec::new(),
            busy_for: SimDuration::ZERO,
            rng: &mut self.rng,
            metrics: &mut self.metrics,
        };
        // Temporarily move the node out so we can pass &mut self pieces.
        let mut node =
            std::mem::replace(&mut self.nodes[idx], Box::new(NullNode) as Box<dyn Node<M>>);
        f(node.as_mut(), &mut ctx);
        self.nodes[idx] = node;

        let Context {
            outbox,
            timers,
            busy_for,
            ..
        } = ctx;
        if busy_for > SimDuration::ZERO {
            self.busy_until[idx] = self.now + busy_for;
        }
        for (delay, to, msg) in outbox {
            if self.partitioned.contains(&Self::pair_key(id, to)) {
                self.metrics.incr("simnet.partition_drops");
                continue;
            }
            let link = self.link(id, to);
            if link.loss > 0.0 && self.rng.gen::<f64>() < link.loss {
                self.metrics.incr("simnet.link_drops");
                continue;
            }
            let at = self.now + delay + link.latency;
            self.push(
                at,
                EventKind::Deliver {
                    from: id,
                    to,
                    msg,
                    queued: false,
                },
            );
        }
        for (delay, token) in timers {
            let at = self.now + delay;
            self.push(at, EventKind::Timer { node: id, token });
        }
    }

    /// Runs until the queue drains or `deadline` passes; returns the
    /// number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(ev) = self.queue.peek() {
            if ev.time > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        // Advance the clock even if nothing fired at the deadline.
        if self.now < deadline {
            self.now = deadline;
        }
        n
    }

    /// Runs until the queue is empty; returns events processed.
    /// `max_events` guards against livelock in tests.
    pub fn run_to_completion(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        assert!(n < max_events, "simulation exceeded {max_events} events");
        n
    }
}

/// Placeholder node used while a real node is borrowed for dispatch.
struct NullNode;
impl<M> Node<M> for NullNode {
    fn on_message(&mut self, _: &mut Context<'_, M>, _: NodeId, _: M) {
        unreachable!("NullNode must never receive messages");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Echoes every number back to the sender, incremented, until 10.
    struct Counter {
        log: Rc<RefCell<Vec<(u64, u32)>>>,
    }

    impl Node<u32> for Counter {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
            self.log.borrow_mut().push((ctx.now().as_nanos(), msg));
            if msg < 10 && from != NodeId::EXTERNAL {
                ctx.send(from, msg + 1);
            } else if msg < 10 {
                ctx.send(ctx.self_id(), msg + 1); // self-ping for external kick
            }
        }
    }

    #[test]
    fn ping_pong_advances_time_by_latency() {
        let mut sim = Simulator::new(7);
        let log_a = Rc::new(RefCell::new(Vec::new()));
        let log_b = Rc::new(RefCell::new(Vec::new()));
        let a = sim.add_node(Box::new(Counter { log: log_a.clone() }));
        let b = sim.add_node(Box::new(Counter { log: log_b.clone() }));
        sim.set_link_bidir(a, b, SimDuration::from_millis(1), 0.0);
        // Kick: external → a delivers 0, then a/b ping-pong to 10.
        sim.inject_at(SimTime::ZERO, b, 99); // b logs 99, no reply (>=10)
        sim.inject_at(SimTime::ZERO, a, 0); // a self-pings 1.. no wait

        // Instead drive a → b manually: a receives 0 (external), self-ping.
        let n = sim.run_to_completion(1000);
        assert!(n > 0);
        assert!(log_b.borrow().iter().any(|&(_, m)| m == 99));
    }

    /// Node that replies to any message; used to observe link latency.
    struct Echo;
    impl Node<u32> for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
            if from != NodeId::EXTERNAL && msg > 0 {
                ctx.send(from, msg - 1);
            } else if from == NodeId::EXTERNAL {
                // Start the exchange with the other node (id 1 - self).
                let peer = if ctx.self_id() == NodeId(0) {
                    NodeId(1)
                } else {
                    NodeId(0)
                };
                ctx.send(peer, msg);
            }
        }
    }

    #[test]
    fn latency_accumulates_per_hop() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Echo));
        let b = sim.add_node(Box::new(Echo));
        sim.set_link_bidir(a, b, SimDuration::from_millis(10), 0.0);
        // Injection delivers at the given instant; a→b:4, b→a:3, … 5 hops.
        sim.inject_at(SimTime::ZERO, a, 4);
        sim.run_to_completion(100);
        assert_eq!(sim.now().as_nanos(), 5 * 10_000_000);
    }

    struct Busy {
        served_at: Rc<RefCell<Vec<u64>>>,
    }
    impl Node<u32> for Busy {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: NodeId, _: u32) {
            self.served_at.borrow_mut().push(ctx.now().as_nanos());
            ctx.busy(SimDuration::from_millis(5));
        }
    }

    #[test]
    fn busy_cpu_serializes_deliveries() {
        let mut sim = Simulator::new(2);
        let served = Rc::new(RefCell::new(Vec::new()));
        let n = sim.add_node(Box::new(Busy {
            served_at: served.clone(),
        }));
        // Three messages injected at the same instant.
        for _ in 0..3 {
            sim.inject_at(SimTime::ZERO, n, 1);
        }
        sim.run_to_completion(100);
        let served = served.borrow();
        assert_eq!(served.len(), 3);
        // Simultaneous arrivals serialize behind the 5 ms service time.
        assert_eq!(served[0], 0);
        assert_eq!(served[1], 5_000_000);
        assert_eq!(served[2], 10_000_000);
    }

    #[test]
    fn bounded_ingress_queue_tail_drops_and_tracks_peak() {
        let mut sim = Simulator::new(2);
        let served = Rc::new(RefCell::new(Vec::new()));
        let n = sim.add_node(Box::new(Busy {
            served_at: served.clone(),
        }));
        sim.set_ingress_cap(n, 1);
        // Four simultaneous arrivals: one serves, one queues, two drop.
        for _ in 0..4 {
            sim.inject_at(SimTime::ZERO, n, 1);
        }
        sim.run_to_completion(100);
        assert_eq!(served.borrow().len(), 2);
        assert_eq!(sim.ingress_drops(n), 2);
        assert_eq!(sim.metrics().counter("simnet.ingress_drops"), 2);
        assert_eq!(sim.ingress_peak(n), 1, "never more than cap queued");
        assert_eq!(sim.ingress_depth(n), 0, "queue drained by end of run");
        // A fresh arrival after the backlog clears is served normally.
        let t = sim.now() + SimDuration::from_secs(1);
        sim.inject_at(t, n, 1);
        sim.run_to_completion(100);
        assert_eq!(served.borrow().len(), 3);
        assert_eq!(sim.ingress_drops(n), 2);
    }

    #[test]
    fn shard_faults_reach_the_node_without_downing_it() {
        let mut sim = Simulator::new(12);
        let log = Rc::new(RefCell::new(Vec::new()));
        let n = sim.add_node(Box::new(FaultProbe { log: log.clone() }));
        let plan = FaultPlan::new()
            .shard_outage(n, 2, SimTime::from_nanos(1_000), SimTime::from_nanos(2_000))
            .shard_partition_window(n, 0, SimTime::from_nanos(3_000), SimTime::from_nanos(4_000));
        sim.schedule_faults(&plan);
        // Delivered mid-outage: shard faults never down the node.
        sim.inject_at(SimTime::from_nanos(1_500), n, 5);
        sim.run_to_completion(100);
        let log = log.borrow();
        assert!(log.iter().any(|e| e.starts_with("ShardCrash(2)@1000")));
        assert!(log.iter().any(|e| e.starts_with("ShardRestart(2)@2000")));
        assert!(log.iter().any(|e| e.starts_with("ShardPartition(0)@3000")));
        assert!(log.iter().any(|e| e.starts_with("ShardHeal(0)@4000")));
        assert!(log.iter().any(|e| e.starts_with("msg:5")));
        assert_eq!(sim.metrics().counter("simnet.shard_crashes"), 1);
        assert_eq!(sim.metrics().counter("simnet.shard_restarts"), 1);
        assert_eq!(sim.metrics().counter("simnet.node_crashes"), 0);
        assert!(!sim.is_node_down(n));
    }

    struct TimerNode {
        fired: Rc<RefCell<Vec<(u64, u64)>>>,
    }
    impl Node<u32> for TimerNode {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: NodeId, _: u32) {
            ctx.set_timer(SimDuration::from_secs(1), 42);
            ctx.set_timer(SimDuration::from_millis(1), 7);
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, u32>, token: u64) {
            self.fired.borrow_mut().push((ctx.now().as_nanos(), token));
        }
    }

    #[test]
    fn timers_fire_in_order_with_tokens() {
        let mut sim = Simulator::new(3);
        let fired = Rc::new(RefCell::new(Vec::new()));
        let n = sim.add_node(Box::new(TimerNode {
            fired: fired.clone(),
        }));
        sim.inject_at(SimTime::ZERO, n, 0);
        sim.run_to_completion(100);
        let fired = fired.borrow();
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].1, 7);
        assert_eq!(fired[1].1, 42);
        assert!(fired[0].0 < fired[1].0);
    }

    #[test]
    fn lossy_link_drops_deterministically() {
        // With the same seed, two runs drop the same messages.
        let run = |seed: u64| -> u64 {
            let mut sim = Simulator::new(seed);
            let sink = sim.add_node(Box::new(Echo));
            let src = sim.add_node(Box::new(Echo));
            sim.set_link(src, sink, SimDuration::from_micros(10), 0.5);
            for _ in 0..100 {
                sim.inject_at(SimTime::ZERO, src, 1);
            }
            sim.run_to_completion(10_000);
            sim.metrics().counter("simnet.link_drops")
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        assert_eq!(a, b, "same seed must reproduce exactly");
        assert!(a > 10 && a < 90, "drop count {a} should be near 50");
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    /// Absorbs messages without replying.
    struct Sink;
    impl Node<u32> for Sink {
        fn on_message(&mut self, _: &mut Context<'_, u32>, _: NodeId, _: u32) {}
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim: Simulator<u32> = Simulator::new(4);
        let n = sim.add_node(Box::new(Sink));
        sim.inject_at(SimTime::from_nanos(5_000_000_000), n, 0);
        sim.run_until(SimTime::from_nanos(1_000_000_000));
        assert_eq!(sim.now().as_nanos(), 1_000_000_000);
        // Event still pending; completes later.
        sim.run_until(SimTime::from_nanos(10_000_000_000));
        assert!(sim.events_processed() >= 1);
    }

    #[test]
    #[should_panic(expected = "cannot inject into the past")]
    fn injecting_into_past_panics() {
        let mut sim: Simulator<u32> = Simulator::new(5);
        let n = sim.add_node(Box::new(Sink));
        sim.inject_at(SimTime::from_nanos(100), n, 0);
        sim.run_to_completion(10);
        sim.inject_at(SimTime::from_nanos(50), n, 0);
    }

    /// Logs deliveries, timer ticks and fault events; re-arms a 1 s tick.
    struct FaultProbe {
        log: Rc<RefCell<Vec<String>>>,
    }
    impl Node<u32> for FaultProbe {
        fn on_message(&mut self, ctx: &mut Context<'_, u32>, _: NodeId, msg: u32) {
            self.log
                .borrow_mut()
                .push(format!("msg:{msg}@{}", ctx.now().as_nanos()));
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, u32>, token: u64) {
            self.log
                .borrow_mut()
                .push(format!("tick@{}", ctx.now().as_nanos()));
            if token == 1 && ctx.now() < SimTime::from_nanos(3_500_000_000) {
                ctx.set_timer(SimDuration::from_secs(1), 1);
            }
        }
        fn on_fault(&mut self, ctx: &mut Context<'_, u32>, fault: FaultEvent) {
            self.log
                .borrow_mut()
                .push(format!("{fault:?}@{}", ctx.now().as_nanos()));
        }
    }

    #[test]
    fn crash_drops_deliveries_but_timers_survive() {
        let mut sim = Simulator::new(9);
        let log = Rc::new(RefCell::new(Vec::new()));
        let n = sim.add_node(Box::new(FaultProbe { log: log.clone() }));
        sim.arm_timer_at(SimTime::ZERO, n, 1);
        let plan = FaultPlan::new().reboot(
            n,
            SimTime::from_nanos(500_000_000),
            SimTime::from_nanos(2_500_000_000),
        );
        sim.schedule_faults(&plan);
        // One message while down (dropped), one after restart (delivered).
        sim.inject_at(SimTime::from_nanos(1_000_000_000), n, 7);
        sim.inject_at(SimTime::from_nanos(3_000_000_000), n, 8);
        sim.run_to_completion(100);

        let log = log.borrow();
        assert!(log.iter().any(|e| e.starts_with("Crash@500000000")));
        assert!(log.iter().any(|e| e.starts_with("Restart@2500000000")));
        assert!(
            !log.iter().any(|e| e.starts_with("msg:7")),
            "down node got a message: {log:?}"
        );
        assert!(log.iter().any(|e| e.starts_with("msg:8")));
        // Ticks at 1 s and 2 s fired even though the node was down.
        assert!(log.iter().any(|e| e == "tick@1000000000"));
        assert!(log.iter().any(|e| e == "tick@2000000000"));
        assert_eq!(sim.metrics().counter("simnet.fault_msg_drops"), 1);
        assert_eq!(sim.metrics().counter("simnet.node_crashes"), 1);
        assert_eq!(sim.metrics().counter("simnet.node_restarts"), 1);
        assert!(!sim.is_node_down(n));
    }

    #[test]
    fn partition_cuts_both_directions_until_heal() {
        let mut sim = Simulator::new(10);
        let a = sim.add_node(Box::new(Echo));
        let b = sim.add_node(Box::new(Echo));
        sim.set_link_bidir(a, b, SimDuration::from_micros(10), 0.0);
        let plan = FaultPlan::new().partition_window(
            a,
            b,
            SimTime::from_nanos(0),
            SimTime::from_nanos(1_000_000),
        );
        sim.schedule_faults(&plan);
        sim.run_until(SimTime::from_nanos(10)); // apply the partition
                                                // External kick makes a send to b — dropped at the cut link.
        sim.inject_at(SimTime::from_nanos(100), a, 3);
        sim.run_until(SimTime::from_nanos(500_000));
        assert_eq!(sim.metrics().counter("simnet.partition_drops"), 1);
        // After the heal, the same exchange completes.
        sim.inject_at(SimTime::from_nanos(2_000_000), a, 3);
        sim.run_to_completion(100);
        assert_eq!(sim.metrics().counter("simnet.partition_drops"), 1);
        assert_eq!(sim.metrics().counter("simnet.links_cut"), 1);
        assert_eq!(sim.metrics().counter("simnet.links_healed"), 1);
    }

    #[test]
    fn loss_spike_and_default_loss_are_deterministic() {
        let run = |seed: u64| -> (u64, u64) {
            let mut sim = Simulator::new(seed);
            let sink = sim.add_node(Box::new(Sink));
            let src = sim.add_node(Box::new(Echo));
            // Fabric-wide 50% loss for the first half of the run.
            let plan = FaultPlan::new().default_loss_window(
                0.5,
                SimTime::ZERO,
                SimTime::from_nanos(1_000_000),
            );
            sim.schedule_faults(&plan);
            let _ = sink;
            for i in 0..200 {
                let at = SimTime::from_nanos(i * 10_000);
                sim.inject_at(at, src, 1);
            }
            sim.run_to_completion(10_000);
            (
                sim.metrics().counter("simnet.link_drops"),
                sim.metrics().counter("simnet.faults_injected"),
            )
        };
        let (drops_a, faults_a) = run(21);
        let (drops_b, _) = run(21);
        assert_eq!(drops_a, drops_b, "same seed must replay identically");
        assert_eq!(faults_a, 2);
        assert!(
            drops_a > 10 && drops_a < 90,
            "~50% of first-half sends drop, got {drops_a}"
        );
    }

    #[test]
    fn latency_fault_preserves_loss() {
        let mut sim = Simulator::new(11);
        let a = sim.add_node(Box::new(Echo));
        let b = sim.add_node(Box::new(Sink));
        sim.set_link(a, b, SimDuration::from_micros(10), 0.0);
        sim.inject_fault_at(
            SimTime::ZERO,
            Fault::Latency {
                a,
                b,
                latency: SimDuration::from_millis(5),
            },
        );
        sim.inject_at(SimTime::from_nanos(10), a, 1);
        sim.run_to_completion(100);
        // Echo's send a→b rides the spiked 5 ms latency.
        assert_eq!(sim.now().as_nanos(), 10 + 5_000_000);
    }
}
