//! Scriptable fault injection: deterministic chaos schedules.
//!
//! A [`FaultPlan`] is a list of `(time, Fault)` pairs handed to
//! [`Simulator::schedule_faults`](crate::Simulator::schedule_faults)
//! before the run starts. Faults become ordinary events in the one
//! event queue, so a chaos run is exactly as deterministic as a clean
//! one: same scenario + same seed ⇒ same trace, drop for drop.

use crate::sim::NodeId;
use crate::time::{SimDuration, SimTime};

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fault {
    /// Node goes down: volatile state is lost, in-flight and future
    /// deliveries to it are dropped until a matching [`Fault::Restart`].
    Crash(NodeId),
    /// Node comes back up and is told so via
    /// [`Node::on_fault`](crate::Node::on_fault) (recover from
    /// non-volatile state there).
    Restart(NodeId),
    /// Cuts the bidirectional link `a ↔ b`: every send between the pair
    /// is dropped until a matching [`Fault::Heal`].
    Partition(NodeId, NodeId),
    /// Restores a previously partitioned pair.
    Heal(NodeId, NodeId),
    /// Sets the loss probability on the pair `a ↔ b` (both directions),
    /// keeping the configured latency. Use `loss: 0.0` to end a spike.
    Loss { a: NodeId, b: NodeId, loss: f64 },
    /// Sets the latency on the pair `a ↔ b` (both directions), keeping
    /// the configured loss.
    Latency {
        a: NodeId,
        b: NodeId,
        latency: SimDuration,
    },
    /// Sets the loss probability applied to every link that has no
    /// explicit override — a fabric-wide degradation dial.
    DefaultLoss(f64),
    /// Crashes one internal shard of `node` (a partitioned control
    /// server): the node stays up and keeps serving other shards, but
    /// the shard's volatile state is lost until a matching
    /// [`Fault::ShardRestart`]. Delivery filtering is the node's job —
    /// the simulator only tells it via
    /// [`Node::on_fault`](crate::Node::on_fault).
    ShardCrash(NodeId, usize),
    /// Brings shard `.1` of `node` back up (state was lost).
    ShardRestart(NodeId, usize),
    /// Partitions shard `.1` of `node` away from the fabric: the shard
    /// keeps its state but serves nothing until [`Fault::ShardHeal`].
    ShardPartition(NodeId, usize),
    /// Reconnects a previously partitioned shard, state intact.
    ShardHeal(NodeId, usize),
}

/// What a node is told when a scheduled fault hits it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// The node just went down; it keeps receiving timer callbacks (so
    /// periodic re-arm discipline survives) but no deliveries.
    Crash,
    /// The node just came back up with volatile state lost; rebuild from
    /// whatever the node models as non-volatile.
    Restart,
    /// Internal shard `.0` crashed (volatile shard state lost); the
    /// node itself stays up.
    ShardCrash(usize),
    /// Internal shard `.0` restarted empty.
    ShardRestart(usize),
    /// Internal shard `.0` is partitioned away (state intact, serving
    /// nothing).
    ShardPartition(usize),
    /// Internal shard `.0` reconnected with its state intact.
    ShardHeal(usize),
}

/// A deterministic, replayable chaos schedule.
///
/// Built with the fluent helpers and installed once via
/// [`Simulator::schedule_faults`](crate::Simulator::schedule_faults).
/// Entries need not be sorted; the event queue orders them.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<(SimTime, Fault)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an arbitrary fault at `at`.
    pub fn at(mut self, at: SimTime, fault: Fault) -> Self {
        self.events.push((at, fault));
        self
    }

    /// Crashes `node` at `at`.
    pub fn crash_at(self, at: SimTime, node: NodeId) -> Self {
        self.at(at, Fault::Crash(node))
    }

    /// Restarts `node` at `at`.
    pub fn restart_at(self, at: SimTime, node: NodeId) -> Self {
        self.at(at, Fault::Restart(node))
    }

    /// Crash at `down_at`, restart at `up_at` — one reboot.
    pub fn reboot(self, node: NodeId, down_at: SimTime, up_at: SimTime) -> Self {
        assert!(up_at >= down_at, "restart must not precede crash");
        self.crash_at(down_at, node).restart_at(up_at, node)
    }

    /// Cuts `a ↔ b` at `from` and heals it at `to`.
    pub fn partition_window(self, a: NodeId, b: NodeId, from: SimTime, to: SimTime) -> Self {
        assert!(to >= from, "heal must not precede partition");
        self.at(from, Fault::Partition(a, b))
            .at(to, Fault::Heal(a, b))
    }

    /// Crashes shard `shard` of `node` at `down_at`, restarts it empty
    /// at `up_at` — one shard reboot while the node stays up.
    pub fn shard_outage(
        self,
        node: NodeId,
        shard: usize,
        down_at: SimTime,
        up_at: SimTime,
    ) -> Self {
        assert!(up_at >= down_at, "shard restart must not precede crash");
        self.at(down_at, Fault::ShardCrash(node, shard))
            .at(up_at, Fault::ShardRestart(node, shard))
    }

    /// Partitions shard `shard` of `node` away at `from`, heals at `to`
    /// (state survives the window).
    pub fn shard_partition_window(
        self,
        node: NodeId,
        shard: usize,
        from: SimTime,
        to: SimTime,
    ) -> Self {
        assert!(to >= from, "shard heal must not precede partition");
        self.at(from, Fault::ShardPartition(node, shard))
            .at(to, Fault::ShardHeal(node, shard))
    }

    /// Raises loss on `a ↔ b` to `loss` at `from`, back to zero at `to`.
    pub fn loss_window(self, a: NodeId, b: NodeId, loss: f64, from: SimTime, to: SimTime) -> Self {
        assert!(to >= from, "loss window must not end before it starts");
        self.at(from, Fault::Loss { a, b, loss })
            .at(to, Fault::Loss { a, b, loss: 0.0 })
    }

    /// Raises the fabric-wide default loss to `loss` at `from`, back to
    /// zero at `to`. Links with explicit parameters are unaffected.
    pub fn default_loss_window(self, loss: f64, from: SimTime, to: SimTime) -> Self {
        assert!(to >= from, "loss window must not end before it starts");
        self.at(from, Fault::DefaultLoss(loss))
            .at(to, Fault::DefaultLoss(0.0))
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The raw schedule.
    pub fn events(&self) -> &[(SimTime, Fault)] {
        &self.events
    }
}
