//! # sda-types
//!
//! Shared vocabulary for the SDA (Software Defined Access) reproduction:
//! identifiers, endpoint identities, locators and prefixes used across the
//! control plane (`sda-lisp`, `sda-policy`) and data plane (`sda-core`).
//!
//! The type layer deliberately mirrors the paper's terminology:
//!
//! * [`VnId`] — 24-bit Virtual Network identifier ("macro" segmentation,
//!   carried in the VXLAN VNI field).
//! * [`GroupId`] — 16-bit scalable group tag ("micro" segmentation, carried
//!   in the VXLAN-GPO group field).
//! * [`Eid`] — overlay Endpoint IDentifier: an IPv4, IPv6 or MAC address.
//!   SDA registers all three per endpoint (§4.1: "Each endpoint requires
//!   registering 3 routes (IPv4, IPv6 and MAC addresses)").
//! * [`Rloc`] — underlay Routing LOCator, the IP of the edge router that
//!   currently serves an endpoint.
//!
//! All types are `Copy` where possible, order-able so they can key sorted
//! maps, and have compact `Display` impls for harness output.

pub mod eid;
pub mod error;
pub mod ids;
pub mod prefix;

pub use eid::{Eid, EidKind, MacAddr, Rloc};
pub use error::{Error, Result};
pub use ids::{EndpointId, GroupId, InstanceId, PortId, RouterId, VnId};
pub use prefix::{EidPrefix, Ipv4Prefix, Ipv6Prefix, MacPrefix};
