//! Prefixes over the three EID families.
//!
//! The routing server stores host routes (/32, /128, /48) for endpoint
//! mobility, plus covering prefixes for subnet-level state (e.g. the border
//! router advertising a whole overlay subnet). Prefix types canonicalize on
//! construction — host bits beyond the prefix length are zeroed — so two
//! spellings of the same prefix always compare equal.

use core::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::eid::{Eid, EidKind, MacAddr};
use crate::error::{Error, Result};

/// An IPv4 prefix in CIDR form.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Ipv4Prefix {
    addr: Ipv4Addr,
    len: u8,
}

impl Ipv4Prefix {
    /// Creates a prefix, zeroing host bits; rejects `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self> {
        if len > 32 {
            return Err(Error::PrefixLenOutOfRange { len, max: 32 });
        }
        let raw = u32::from(addr);
        let masked = if len == 0 {
            0
        } else {
            raw & (u32::MAX << (32 - len))
        };
        Ok(Ipv4Prefix {
            addr: Ipv4Addr::from(masked),
            len,
        })
    }

    /// Host route (/32) for a single address.
    pub fn host(addr: Ipv4Addr) -> Self {
        Ipv4Prefix { addr, len: 32 }
    }

    /// The canonical network address.
    pub const fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// Prefix length in bits (a CIDR length, not a container size —
    /// there is deliberately no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length default route.
    pub const fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        if self.len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - self.len);
        (u32::from(addr) & mask) == u32::from(self.addr)
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// An IPv6 prefix in CIDR form.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Ipv6Prefix {
    addr: Ipv6Addr,
    len: u8,
}

impl Ipv6Prefix {
    /// Creates a prefix, zeroing host bits; rejects `len > 128`.
    pub fn new(addr: Ipv6Addr, len: u8) -> Result<Self> {
        if len > 128 {
            return Err(Error::PrefixLenOutOfRange { len, max: 128 });
        }
        let raw = u128::from(addr);
        let masked = if len == 0 {
            0
        } else {
            raw & (u128::MAX << (128 - len))
        };
        Ok(Ipv6Prefix {
            addr: Ipv6Addr::from(masked),
            len,
        })
    }

    /// Host route (/128) for a single address.
    pub fn host(addr: Ipv6Addr) -> Self {
        Ipv6Prefix { addr, len: 128 }
    }

    /// The canonical network address.
    pub const fn addr(&self) -> Ipv6Addr {
        self.addr
    }

    /// Prefix length in bits (a CIDR length, not a container size —
    /// there is deliberately no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(&self) -> u8 {
        self.len
    }

    /// True for the zero-length default route.
    pub const fn is_default(&self) -> bool {
        self.len == 0
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        if self.len == 0 {
            return true;
        }
        let mask = u128::MAX << (128 - self.len);
        (u128::from(addr) & mask) == u128::from(self.addr)
    }
}

impl fmt::Display for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// A MAC "prefix". L2 EIDs are practically always exact (/48), but the
/// trie treats every family uniformly, so MACs get a prefix type too
/// (an OUI, for example, is a /24 MAC prefix).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MacPrefix {
    addr: MacAddr,
    len: u8,
}

impl MacPrefix {
    /// Creates a prefix, zeroing host bits; rejects `len > 48`.
    pub fn new(addr: MacAddr, len: u8) -> Result<Self> {
        if len > 48 {
            return Err(Error::PrefixLenOutOfRange { len, max: 48 });
        }
        let mut raw = [0u8; 8];
        raw[2..].copy_from_slice(&addr.octets());
        let v = u64::from_be_bytes(raw);
        let masked = if len == 0 {
            0
        } else {
            v & ((!0u64 << (48 - len)) & 0x0000_FFFF_FFFF_FFFF)
        };
        let bytes = masked.to_be_bytes();
        let mut out = [0u8; 6];
        out.copy_from_slice(&bytes[2..]);
        Ok(MacPrefix {
            addr: MacAddr(out),
            len,
        })
    }

    /// Exact-match (/48) prefix for one MAC.
    pub fn host(addr: MacAddr) -> Self {
        MacPrefix { addr, len: 48 }
    }

    /// The canonical masked MAC.
    pub const fn addr(&self) -> MacAddr {
        self.addr
    }

    /// Prefix length in bits (a CIDR length, not a container size —
    /// there is deliberately no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(&self) -> u8 {
        self.len
    }

    /// Whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: MacAddr) -> bool {
        if self.len == 0 {
            return true;
        }
        let full = |m: MacAddr| {
            let mut raw = [0u8; 8];
            raw[2..].copy_from_slice(&m.octets());
            u64::from_be_bytes(raw)
        };
        let mask = (!0u64 << (48 - self.len)) & 0x0000_FFFF_FFFF_FFFF;
        (full(addr) & mask) == full(self.addr)
    }
}

impl fmt::Display for MacPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

/// A prefix over any EID family.
///
/// This is the key type of the routing server's per-VN Patricia tries and
/// of the edge routers' VRF tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EidPrefix {
    /// IPv4 CIDR prefix.
    V4(Ipv4Prefix),
    /// IPv6 CIDR prefix.
    V6(Ipv6Prefix),
    /// MAC prefix (usually /48 exact).
    Mac(MacPrefix),
}

impl EidPrefix {
    /// Host route covering exactly `eid`.
    pub fn host(eid: Eid) -> Self {
        match eid {
            Eid::V4(a) => EidPrefix::V4(Ipv4Prefix::host(a)),
            Eid::V6(a) => EidPrefix::V6(Ipv6Prefix::host(a)),
            Eid::Mac(m) => EidPrefix::Mac(MacPrefix::host(m)),
        }
    }

    /// The address family of this prefix.
    pub const fn kind(&self) -> EidKind {
        match self {
            EidPrefix::V4(_) => EidKind::V4,
            EidPrefix::V6(_) => EidKind::V6,
            EidPrefix::Mac(_) => EidKind::Mac,
        }
    }

    /// Prefix length in bits (a CIDR length, not a container size —
    /// there is deliberately no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(&self) -> u8 {
        match self {
            EidPrefix::V4(p) => p.len(),
            EidPrefix::V6(p) => p.len(),
            EidPrefix::Mac(p) => p.len(),
        }
    }

    /// True when the prefix is a host route (full-width).
    pub fn is_host(&self) -> bool {
        u16::from(self.len()) == self.kind().bit_len()
    }

    /// Whether `eid` (of the same family) falls inside this prefix.
    /// EIDs of a different family never match.
    pub fn contains(&self, eid: Eid) -> bool {
        match (self, eid) {
            (EidPrefix::V4(p), Eid::V4(a)) => p.contains(a),
            (EidPrefix::V6(p), Eid::V6(a)) => p.contains(a),
            (EidPrefix::Mac(p), Eid::Mac(m)) => p.contains(m),
            _ => false,
        }
    }

    /// Canonical network bytes (4, 16 or 6 bytes).
    pub fn addr_bytes(&self) -> Vec<u8> {
        match self {
            EidPrefix::V4(p) => p.addr().octets().to_vec(),
            EidPrefix::V6(p) => p.addr().octets().to_vec(),
            EidPrefix::Mac(p) => p.addr().octets().to_vec(),
        }
    }

    /// Left-aligned 128-bit trie key: the canonical network bits occupy
    /// the top `len()` bits of the word, the rest is zero (construction
    /// already zeroed host bits).
    ///
    /// Allocation-free counterpart to [`EidPrefix::addr_bytes`] — this is
    /// what the LPM hot path uses to build trie keys without touching the
    /// heap.
    pub fn key_bits(&self) -> u128 {
        match self {
            EidPrefix::V4(p) => u128::from(u32::from(p.addr())) << 96,
            EidPrefix::V6(p) => u128::from(p.addr()),
            EidPrefix::Mac(p) => {
                let mut raw = [0u8; 8];
                raw[..6].copy_from_slice(&p.addr().octets());
                u128::from(u64::from_be_bytes(raw)) << 64
            }
        }
    }
}

impl From<Ipv4Prefix> for EidPrefix {
    fn from(p: Ipv4Prefix) -> Self {
        EidPrefix::V4(p)
    }
}

impl From<Ipv6Prefix> for EidPrefix {
    fn from(p: Ipv6Prefix) -> Self {
        EidPrefix::V6(p)
    }
}

impl From<MacPrefix> for EidPrefix {
    fn from(p: MacPrefix) -> Self {
        EidPrefix::Mac(p)
    }
}

impl fmt::Display for EidPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EidPrefix::V4(p) => write!(f, "{p}"),
            EidPrefix::V6(p) => write!(f, "{p}"),
            EidPrefix::Mac(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_prefix_canonicalizes_host_bits() {
        let a = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 2, 3), 24).unwrap();
        let b = Ipv4Prefix::new(Ipv4Addr::new(10, 1, 2, 0), 24).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.addr(), Ipv4Addr::new(10, 1, 2, 0));
    }

    #[test]
    fn ipv4_prefix_contains() {
        let p = Ipv4Prefix::new(Ipv4Addr::new(192, 168, 0, 0), 16).unwrap();
        assert!(p.contains(Ipv4Addr::new(192, 168, 255, 1)));
        assert!(!p.contains(Ipv4Addr::new(192, 169, 0, 1)));
    }

    #[test]
    fn default_route_contains_everything() {
        let p = Ipv4Prefix::new(Ipv4Addr::new(1, 2, 3, 4), 0).unwrap();
        assert!(p.is_default());
        assert!(p.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(p.contains(Ipv4Addr::new(0, 0, 0, 0)));
    }

    #[test]
    fn prefix_len_bounds_enforced() {
        assert!(Ipv4Prefix::new(Ipv4Addr::LOCALHOST, 33).is_err());
        assert!(Ipv6Prefix::new(Ipv6Addr::LOCALHOST, 129).is_err());
        assert!(MacPrefix::new(MacAddr::ZERO, 49).is_err());
    }

    #[test]
    fn ipv6_prefix_contains_and_canonicalizes() {
        let p = Ipv6Prefix::new("2001:db8::ffff".parse().unwrap(), 32).unwrap();
        assert_eq!(p.addr(), "2001:db8::".parse::<Ipv6Addr>().unwrap());
        assert!(p.contains("2001:db8:1::1".parse().unwrap()));
        assert!(!p.contains("2001:db9::1".parse().unwrap()));
    }

    #[test]
    fn mac_prefix_oui_matching() {
        let oui = MacPrefix::new(MacAddr([0x02, 0x00, 0x00, 0xAA, 0xBB, 0xCC]), 24).unwrap();
        // Host bits zeroed:
        assert_eq!(oui.addr(), MacAddr([0x02, 0x00, 0x00, 0, 0, 0]));
        assert!(oui.contains(MacAddr([0x02, 0x00, 0x00, 1, 2, 3])));
        assert!(!oui.contains(MacAddr([0x02, 0x00, 0x01, 1, 2, 3])));
    }

    #[test]
    fn eid_prefix_host_roundtrip() {
        let eid = Eid::V4(Ipv4Addr::new(10, 0, 0, 7));
        let p = EidPrefix::host(eid);
        assert!(p.is_host());
        assert!(p.contains(eid));
        assert!(!p.contains(Eid::V4(Ipv4Addr::new(10, 0, 0, 8))));
    }

    #[test]
    fn cross_family_never_contains() {
        let p = EidPrefix::host(Eid::V4(Ipv4Addr::new(10, 0, 0, 7)));
        assert!(!p.contains(Eid::Mac(MacAddr::ZERO)));
        assert!(!p.contains(Eid::V6(Ipv6Addr::LOCALHOST)));
    }

    #[test]
    fn displays() {
        let p4: EidPrefix = Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 8)
            .unwrap()
            .into();
        assert_eq!(p4.to_string(), "10.0.0.0/8");
        let pm: EidPrefix = MacPrefix::host(MacAddr::from_seed(0)).into();
        assert_eq!(pm.to_string(), "02:00:00:00:00:00/48");
    }

    #[test]
    fn mac_prefix_zero_len_contains_all() {
        let p = MacPrefix::new(MacAddr::BROADCAST, 0).unwrap();
        assert!(p.contains(MacAddr::ZERO));
        assert!(p.contains(MacAddr::BROADCAST));
    }
}
