//! Error type shared by the vocabulary crates.

use core::fmt;

use crate::eid::EidKind;

/// Errors produced while constructing or parsing vocabulary types.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Error {
    /// A VN identifier larger than 24 bits was supplied.
    VnIdOutOfRange(u32),
    /// EID byte slice had the wrong length for its address family.
    BadEidLength {
        /// The family being parsed.
        kind: EidKind,
        /// The offending byte length.
        len: usize,
    },
    /// A prefix length larger than the address width was supplied.
    PrefixLenOutOfRange {
        /// Requested prefix length.
        len: u8,
        /// Maximum allowed for the family.
        max: u8,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::VnIdOutOfRange(v) => write!(f, "VN id {v} exceeds 24 bits"),
            Error::BadEidLength { kind, len } => {
                write!(f, "{len} bytes is not a valid {kind} EID")
            }
            Error::PrefixLenOutOfRange { len, max } => {
                write!(f, "prefix length /{len} exceeds maximum /{max}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the vocabulary crates.
pub type Result<T> = core::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readably() {
        assert_eq!(
            Error::VnIdOutOfRange(1 << 24).to_string(),
            "VN id 16777216 exceeds 24 bits"
        );
        assert_eq!(
            Error::BadEidLength {
                kind: EidKind::V4,
                len: 3
            }
            .to_string(),
            "3 bytes is not a valid ipv4 EID"
        );
        assert_eq!(
            Error::PrefixLenOutOfRange { len: 33, max: 32 }.to_string(),
            "prefix length /33 exceeds maximum /32"
        );
    }
}
