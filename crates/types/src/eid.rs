//! Endpoint identifiers (EIDs) and routing locators (RLOCs).
//!
//! LISP separates *who* an endpoint is (its EID — an overlay IPv4, IPv6 or
//! MAC address) from *where* it currently attaches (the RLOC — the underlay
//! address of the edge router serving it). The routing server stores
//! `(VN, EID) → RLOC` mappings; edge routers query and update them.

use core::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use crate::error::{Error, Result};

/// A 48-bit MAC address.
///
/// MAC-keyed EIDs are what make SDA's L2 service support possible (§3.5):
/// the routing server indexes endpoints by MAC in addition to IP so that
/// L2 gateways can convert broadcast (e.g. ARP) to unicast.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast MAC address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// All-zero MAC, used as a "none yet" placeholder during onboarding.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Builds a locally-administered unicast MAC from a 32-bit seed.
    ///
    /// Workload generators use this to mint unique, valid endpoint MACs:
    /// the first octet is `0x02` (locally administered, unicast).
    pub const fn from_seed(seed: u32) -> Self {
        let b = seed.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// True if the group (multicast/broadcast) bit is set.
    pub const fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True if this is the all-ones broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// Byte representation, network order.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// The address family of an [`Eid`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EidKind {
    /// Overlay IPv4 address.
    V4,
    /// Overlay IPv6 address.
    V6,
    /// Overlay MAC address (L2 service support).
    Mac,
}

impl EidKind {
    /// Key width in bits when stored in the Patricia trie.
    pub const fn bit_len(self) -> u16 {
        match self {
            EidKind::V4 => 32,
            EidKind::V6 => 128,
            EidKind::Mac => 48,
        }
    }
}

impl fmt::Display for EidKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EidKind::V4 => "ipv4",
            EidKind::V6 => "ipv6",
            EidKind::Mac => "mac",
        })
    }
}

/// An overlay Endpoint IDentifier.
///
/// SDA registers up to three EIDs per endpoint — IPv4, IPv6 and MAC — all
/// mapping to the same RLOC. The enum keeps them in one keyspace so the
/// routing server can be generic over address family.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Eid {
    /// Overlay IPv4 address.
    V4(Ipv4Addr),
    /// Overlay IPv6 address.
    V6(Ipv6Addr),
    /// Overlay MAC address.
    Mac(MacAddr),
}

impl Eid {
    /// The address family of this EID.
    pub const fn kind(&self) -> EidKind {
        match self {
            Eid::V4(_) => EidKind::V4,
            Eid::V6(_) => EidKind::V6,
            Eid::Mac(_) => EidKind::Mac,
        }
    }

    /// Canonical byte representation (4, 16 or 6 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Eid::V4(a) => a.octets().to_vec(),
            Eid::V6(a) => a.octets().to_vec(),
            Eid::Mac(m) => m.octets().to_vec(),
        }
    }

    /// Reconstructs an EID from `kind` + canonical bytes.
    pub fn from_bytes(kind: EidKind, bytes: &[u8]) -> Result<Self> {
        match kind {
            EidKind::V4 => {
                let arr: [u8; 4] = bytes.try_into().map_err(|_| Error::BadEidLength {
                    kind,
                    len: bytes.len(),
                })?;
                Ok(Eid::V4(Ipv4Addr::from(arr)))
            }
            EidKind::V6 => {
                let arr: [u8; 16] = bytes.try_into().map_err(|_| Error::BadEidLength {
                    kind,
                    len: bytes.len(),
                })?;
                Ok(Eid::V6(Ipv6Addr::from(arr)))
            }
            EidKind::Mac => {
                let arr: [u8; 6] = bytes.try_into().map_err(|_| Error::BadEidLength {
                    kind,
                    len: bytes.len(),
                })?;
                Ok(Eid::Mac(MacAddr(arr)))
            }
        }
    }

    /// Left-aligned 128-bit trie key: the address occupies the top
    /// `kind().bit_len()` bits of the word, the rest is zero.
    ///
    /// Allocation-free counterpart to [`Eid::to_bytes`] — this is what the
    /// LPM hot path uses to build trie keys without touching the heap.
    pub fn key_bits(&self) -> u128 {
        match self {
            Eid::V4(a) => u128::from(u32::from(*a)) << 96,
            Eid::V6(a) => u128::from(*a),
            Eid::Mac(m) => {
                let mut raw = [0u8; 8];
                raw[..6].copy_from_slice(&m.octets());
                u128::from(u64::from_be_bytes(raw)) << 64
            }
        }
    }

    /// The IP address if this is an L3 EID.
    pub fn as_ip(&self) -> Option<IpAddr> {
        match self {
            Eid::V4(a) => Some(IpAddr::V4(*a)),
            Eid::V6(a) => Some(IpAddr::V6(*a)),
            Eid::Mac(_) => None,
        }
    }

    /// The MAC address if this is an L2 EID.
    pub fn as_mac(&self) -> Option<MacAddr> {
        match self {
            Eid::Mac(m) => Some(*m),
            _ => None,
        }
    }
}

impl From<Ipv4Addr> for Eid {
    fn from(a: Ipv4Addr) -> Self {
        Eid::V4(a)
    }
}

impl From<Ipv6Addr> for Eid {
    fn from(a: Ipv6Addr) -> Self {
        Eid::V6(a)
    }
}

impl From<MacAddr> for Eid {
    fn from(m: MacAddr) -> Self {
        Eid::Mac(m)
    }
}

impl From<IpAddr> for Eid {
    fn from(a: IpAddr) -> Self {
        match a {
            IpAddr::V4(v4) => Eid::V4(v4),
            IpAddr::V6(v6) => Eid::V6(v6),
        }
    }
}

impl fmt::Display for Eid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Eid::V4(a) => write!(f, "{a}"),
            Eid::V6(a) => write!(f, "{a}"),
            Eid::Mac(m) => write!(f, "{m}"),
        }
    }
}

/// An underlay Routing LOCator: the underlay IPv4 address of a fabric
/// router. Other routers encapsulate overlay traffic toward this address.
///
/// The underlay in SDA deployments is IPv4 (OSPF/IS-IS routed), so RLOCs
/// are IPv4-only here; the *overlay* is the multi-family side.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Rloc(pub Ipv4Addr);

impl Rloc {
    /// Builds the conventional underlay address for router index `i`:
    /// `10.255.(i >> 8).(i & 0xff)` — a loopback-style /32 per router.
    pub const fn for_router_index(i: u16) -> Self {
        Rloc(Ipv4Addr::new(10, 255, (i >> 8) as u8, (i & 0xff) as u8))
    }

    /// The underlying IPv4 address.
    pub const fn addr(self) -> Ipv4Addr {
        self.0
    }
}

impl From<Ipv4Addr> for Rloc {
    fn from(a: Ipv4Addr) -> Self {
        Rloc(a)
    }
}

impl fmt::Display for Rloc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_is_colon_hex() {
        let m = MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(m.to_string(), "de:ad:be:ef:00:01");
    }

    #[test]
    fn mac_from_seed_is_unicast_locally_administered() {
        for seed in [0u32, 1, 0xffff_ffff, 12345] {
            let m = MacAddr::from_seed(seed);
            assert!(!m.is_multicast(), "{m} must be unicast");
            assert_eq!(m.octets()[0], 0x02);
        }
    }

    #[test]
    fn mac_from_seed_is_injective_on_distinct_seeds() {
        let a = MacAddr::from_seed(1);
        let b = MacAddr::from_seed(2);
        assert_ne!(a, b);
    }

    #[test]
    fn broadcast_is_multicast_too() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::ZERO.is_broadcast());
    }

    #[test]
    fn eid_roundtrips_through_bytes() {
        let cases = [
            Eid::V4(Ipv4Addr::new(10, 1, 2, 3)),
            Eid::V6("2001:db8::1".parse::<Ipv6Addr>().unwrap()),
            Eid::Mac(MacAddr::from_seed(99)),
        ];
        for eid in cases {
            let bytes = eid.to_bytes();
            assert_eq!(bytes.len() as u16 * 8, eid.kind().bit_len());
            let back = Eid::from_bytes(eid.kind(), &bytes).unwrap();
            assert_eq!(back, eid);
        }
    }

    #[test]
    fn eid_from_bytes_rejects_wrong_length() {
        assert!(Eid::from_bytes(EidKind::V4, &[1, 2, 3]).is_err());
        assert!(Eid::from_bytes(EidKind::Mac, &[0; 7]).is_err());
        assert!(Eid::from_bytes(EidKind::V6, &[0; 4]).is_err());
    }

    #[test]
    fn eid_accessors() {
        let v4 = Eid::V4(Ipv4Addr::LOCALHOST);
        assert!(v4.as_ip().is_some());
        assert!(v4.as_mac().is_none());
        let mac = Eid::Mac(MacAddr::ZERO);
        assert!(mac.as_ip().is_none());
        assert_eq!(mac.as_mac(), Some(MacAddr::ZERO));
    }

    #[test]
    fn rloc_for_router_index_unique_and_stable() {
        let a = Rloc::for_router_index(1);
        let b = Rloc::for_router_index(256);
        assert_ne!(a, b);
        assert_eq!(a.addr(), Ipv4Addr::new(10, 255, 0, 1));
        assert_eq!(b.addr(), Ipv4Addr::new(10, 255, 1, 0));
    }
}
