//! Identifier newtypes.
//!
//! Each identifier is a thin wrapper over an integer with the bit-width the
//! corresponding wire field uses. Constructors validate the range so an
//! out-of-range value can never reach the encoder.

use core::fmt;

use crate::error::{Error, Result};

/// A 24-bit Virtual Network identifier ("macro" segmentation).
///
/// VNs map to isolated routing/switching domains (VRFs on the routers) and
/// are carried in the 24-bit VNI field of the VXLAN header. The paper's
/// example: a hospital isolating doctors, guests and medical devices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VnId(u32);

impl VnId {
    /// Maximum encodable value (2^24 - 1).
    pub const MAX: u32 = 0x00FF_FFFF;

    /// The default VN used when an operator does not segment the network.
    pub const DEFAULT: VnId = VnId(1);

    /// Creates a VN identifier, rejecting values that do not fit in 24 bits.
    pub fn new(raw: u32) -> Result<Self> {
        if raw > Self::MAX {
            return Err(Error::VnIdOutOfRange(raw));
        }
        Ok(VnId(raw))
    }

    /// Creates a VN identifier without range checking.
    ///
    /// # Panics
    /// Panics in debug builds if `raw` exceeds 24 bits.
    pub const fn new_unchecked(raw: u32) -> Self {
        debug_assert!(raw <= Self::MAX);
        VnId(raw)
    }

    /// Raw 24-bit value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for VnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vn{}", self.0)
    }
}

/// A 16-bit scalable group tag ("micro" segmentation).
///
/// Groups classify endpoints within a VN; the connectivity matrix is keyed
/// by `(source GroupId, destination GroupId)`. Carried in the VXLAN-GPO
/// Group Policy ID field.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u16);

impl GroupId {
    /// The conventional "unknown/unauthenticated" group.
    pub const UNKNOWN: GroupId = GroupId(0);

    /// Raw 16-bit value.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// LISP instance-id: the `(VN)` scope under which an EID is registered.
///
/// In this implementation instance-ids are exactly VN identifiers, but the
/// control plane keeps its own name for them to match LISP terminology.
pub type InstanceId = VnId;

/// Identifies a router (edge, border or underlay) within a deployment.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RouterId(pub u32);

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A switch port on an edge router (where an endpoint or AP attaches).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortId(pub u16);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifies an endpoint (host, robot, IoT device) in workloads and tests.
///
/// This is a *simulation* handle — the network itself only ever sees the
/// endpoint's [`crate::Eid`]s and credentials, never this id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EndpointId(pub u32);

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vn_id_accepts_24_bit_values() {
        assert_eq!(VnId::new(0).unwrap().raw(), 0);
        assert_eq!(VnId::new(VnId::MAX).unwrap().raw(), VnId::MAX);
    }

    #[test]
    fn vn_id_rejects_25_bit_values() {
        assert!(matches!(
            VnId::new(VnId::MAX + 1),
            Err(Error::VnIdOutOfRange(_))
        ));
        assert!(VnId::new(u32::MAX).is_err());
    }

    #[test]
    fn vn_id_display_is_compact() {
        assert_eq!(VnId::new(42).unwrap().to_string(), "vn42");
    }

    #[test]
    fn group_id_display() {
        assert_eq!(GroupId(7).to_string(), "g7");
        assert_eq!(GroupId::UNKNOWN.raw(), 0);
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(VnId::new(1).unwrap() < VnId::new(2).unwrap());
        assert!(GroupId(1) < GroupId(10));
        assert!(RouterId(3) < RouterId(30));
    }
}
