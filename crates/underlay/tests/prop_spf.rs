//! SPF correctness on random graphs: Dijkstra-with-ECMP must produce
//! exactly the distances of a reference Bellman-Ford, and every ECMP
//! next hop must lie on some shortest path.

use std::collections::BTreeMap;

use proptest::prelude::*;
use sda_types::RouterId;
use sda_underlay::{spf, Lsa, Lsdb, Topology};

/// Reference: Bellman-Ford over the same confirmed-link view.
fn bellman_ford(t: &Topology, src: RouterId) -> BTreeMap<RouterId, u32> {
    let mut dist: BTreeMap<RouterId, u32> = BTreeMap::new();
    dist.insert(src, 0);
    let n = t.len();
    for _ in 0..n {
        let mut changed = false;
        let snapshot: Vec<(RouterId, u32)> = dist.iter().map(|(r, d)| (*r, *d)).collect();
        for (u, du) in snapshot {
            for (v, w) in t.neighbors(u) {
                let cand = du + w;
                if dist.get(&v).map(|d| cand < *d).unwrap_or(true) {
                    dist.insert(v, cand);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

fn full_lsdb(t: &Topology) -> Lsdb {
    let mut db = Lsdb::new();
    for r in t.routers() {
        db.install(Lsa::new(r, 1, t.neighbors(r).collect()));
    }
    db
}

fn arb_topology() -> impl Strategy<Value = Topology> {
    // n nodes, random edge set with weights 1..8.
    (2usize..12).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n as u32, 0..n as u32, 1u32..8),
            0..(n * (n - 1) / 2 + 1),
        );
        edges.prop_map(move |es| {
            let mut t = Topology::new();
            for i in 0..n as u32 {
                t.add_router(RouterId(i));
            }
            for (a, b, w) in es {
                if a != b {
                    t.add_link(RouterId(a), RouterId(b), w);
                }
            }
            t
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn spf_distances_match_bellman_ford(t in arb_topology()) {
        let db = full_lsdb(&t);
        for src in t.routers() {
            let table = spf(&db, src);
            let reference = bellman_ford(&t, src);
            // Same reachable set.
            let got: BTreeMap<RouterId, u32> = t
                .routers()
                .filter_map(|d| table.route(d).map(|(c, _)| (d, c)))
                .collect();
            prop_assert_eq!(&got, &reference, "src {:?}", src);
        }
    }

    #[test]
    fn every_ecmp_next_hop_lies_on_a_shortest_path(t in arb_topology()) {
        let db = full_lsdb(&t);
        for src in t.routers() {
            let table = spf(&db, src);
            let dist = bellman_ford(&t, src);
            for dst in t.routers() {
                if dst == src {
                    continue;
                }
                let Some((cost, hops)) = table.route(dst) else { continue };
                for h in hops {
                    // src—h link weight + dist(h → dst along shortest
                    // tree) must equal the total cost:
                    // dist[h] == w(src,h) and remaining dist must be
                    // cost - w(src,h) when measured from h.
                    let w = t
                        .neighbors(src)
                        .find(|(n, _)| n == h)
                        .map(|(_, w)| w)
                        .expect("next hop must be a direct neighbor");
                    let from_h = bellman_ford(&t, *h);
                    let rest = from_h.get(&dst).copied();
                    prop_assert_eq!(
                        rest.map(|r| r + w),
                        Some(cost),
                        "hop {:?} of {:?}→{:?} is off the shortest path",
                        h, src, dst
                    );
                }
                // The paper's ECMP flow stability: next_hop() result is a
                // member of the advertised set.
                if let Some(pick) = table.next_hop(dst, 12345) {
                    prop_assert!(hops.contains(&pick));
                }
            }
            let _ = dist;
        }
    }

    /// Removing a link never *improves* any distance (monotonicity).
    #[test]
    fn link_removal_is_monotone(t in arb_topology(), k in 0usize..8) {
        let links: Vec<(RouterId, RouterId)> = t
            .routers()
            .flat_map(|r| {
                t.neighbors(r)
                    .filter(move |(n, _)| *n > r)
                    .map(move |(n, _)| (r, n))
                    .collect::<Vec<_>>()
            })
            .collect();
        if links.is_empty() {
            return Ok(());
        }
        let (a, b) = links[k % links.len()];
        let mut cut = t.clone();
        cut.remove_link(a, b);

        let before = spf(&full_lsdb(&t), RouterId(0));
        let after = spf(&full_lsdb(&cut), RouterId(0));
        for dst in t.routers() {
            if let (Some((cb, _)), Some((ca, _))) = (before.route(dst), after.route(dst)) {
                prop_assert!(ca >= cb, "removing a link must not shorten paths");
            }
            // A destination reachable after must have been reachable before.
            if after.reaches(dst) {
                prop_assert!(before.reaches(dst));
            }
        }
    }
}
