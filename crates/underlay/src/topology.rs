//! Static topology description: the ground truth a scenario is built
//! from, and the reference SPF input in tests.

use std::collections::BTreeMap;

use sda_types::RouterId;

/// An undirected weighted graph of underlay routers.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    /// adjacency[r] = neighbors of r with link costs.
    adjacency: BTreeMap<RouterId, BTreeMap<RouterId, u32>>,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Ensures `r` exists (possibly isolated).
    pub fn add_router(&mut self, r: RouterId) {
        self.adjacency.entry(r).or_default();
    }

    /// Adds (or updates) the undirected link `a — b` with `cost`.
    ///
    /// # Panics
    /// Panics if `a == b` or `cost == 0`.
    pub fn add_link(&mut self, a: RouterId, b: RouterId, cost: u32) {
        assert_ne!(a, b, "self-links are not allowed");
        assert!(cost > 0, "link cost must be positive");
        self.adjacency.entry(a).or_default().insert(b, cost);
        self.adjacency.entry(b).or_default().insert(a, cost);
    }

    /// Removes the undirected link `a — b` if present.
    pub fn remove_link(&mut self, a: RouterId, b: RouterId) {
        if let Some(n) = self.adjacency.get_mut(&a) {
            n.remove(&b);
        }
        if let Some(n) = self.adjacency.get_mut(&b) {
            n.remove(&a);
        }
    }

    /// All routers, ascending.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> + '_ {
        self.adjacency.keys().copied()
    }

    /// Neighbors of `r` with link costs, ascending by id.
    pub fn neighbors(&self, r: RouterId) -> impl Iterator<Item = (RouterId, u32)> + '_ {
        self.adjacency
            .get(&r)
            .into_iter()
            .flat_map(|n| n.iter().map(|(id, c)| (*id, *c)))
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// True when no routers exist.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Builds a line `r0 — r1 — … — rn` with unit costs (handy in tests).
    pub fn line(n: u32) -> Topology {
        let mut t = Topology::new();
        for i in 0..n {
            t.add_router(RouterId(i));
        }
        for i in 1..n {
            t.add_link(RouterId(i - 1), RouterId(i), 1);
        }
        t
    }

    /// Builds a two-tier campus underlay: `spines` core routers each
    /// connected to every one of `leaves` access routers (unit costs) —
    /// the shape of Fig. 8 with border-facing spines.
    pub fn spine_leaf(spines: u32, leaves: u32) -> Topology {
        let mut t = Topology::new();
        for s in 0..spines {
            t.add_router(RouterId(s));
        }
        for l in 0..leaves {
            let leaf = RouterId(spines + l);
            t.add_router(leaf);
            for s in 0..spines {
                t.add_link(RouterId(s), leaf, 1);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn links_are_undirected() {
        let mut t = Topology::new();
        t.add_link(RouterId(1), RouterId(2), 5);
        assert_eq!(
            t.neighbors(RouterId(1)).collect::<Vec<_>>(),
            vec![(RouterId(2), 5)]
        );
        assert_eq!(
            t.neighbors(RouterId(2)).collect::<Vec<_>>(),
            vec![(RouterId(1), 5)]
        );
    }

    #[test]
    fn remove_link_both_sides() {
        let mut t = Topology::line(3);
        t.remove_link(RouterId(1), RouterId(0));
        assert_eq!(t.neighbors(RouterId(0)).count(), 0);
        assert_eq!(t.neighbors(RouterId(1)).count(), 1);
    }

    #[test]
    fn spine_leaf_shape() {
        let t = Topology::spine_leaf(2, 6);
        assert_eq!(t.len(), 8);
        // Every leaf sees both spines.
        for l in 2..8 {
            assert_eq!(t.neighbors(RouterId(l)).count(), 2);
        }
        // Every spine sees all leaves.
        for s in 0..2 {
            assert_eq!(t.neighbors(RouterId(s)).count(), 6);
        }
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        Topology::new().add_link(RouterId(1), RouterId(1), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cost_panics() {
        Topology::new().add_link(RouterId(1), RouterId(2), 0);
    }
}
