//! Underlay reachability tracking (§5.1, "Underlay Connectivity Issues").
//!
//! > "edge routers monitor the address announcements of the underlay
//! > routing protocol (IS-IS or OSPF) to know about their reachability to
//! > underlay IP addresses of the other edge routers. This way, when they
//! > detect a connectivity outage, they update their local forwarding
//! > table deleting such route and falling back to the default route to
//! > the border."
//!
//! [`ReachabilityTracker`] diffs consecutive routing tables and emits
//! up/down events for a watched set of peers; `sda-core`'s edge router
//! reacts to `Down` by purging map-cache entries pointing at the lost
//! RLOC.

use std::collections::BTreeMap;

use sda_types::RouterId;

use crate::spf::RouteTable;

/// A change in reachability of a watched peer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReachabilityEvent {
    /// The peer became reachable.
    Up(RouterId),
    /// The peer stopped being reachable.
    Down(RouterId),
}

/// Tracks reachability of a fixed set of peers across SPF runs.
#[derive(Clone, Debug, Default)]
pub struct ReachabilityTracker {
    watched: BTreeMap<RouterId, bool>,
}

impl ReachabilityTracker {
    /// Creates a tracker watching `peers` (initially all unreachable).
    pub fn new(peers: impl IntoIterator<Item = RouterId>) -> Self {
        ReachabilityTracker {
            watched: peers.into_iter().map(|p| (p, false)).collect(),
        }
    }

    /// Adds a peer to the watch set.
    pub fn watch(&mut self, peer: RouterId) {
        self.watched.entry(peer).or_insert(false);
    }

    /// Stops watching a peer.
    pub fn unwatch(&mut self, peer: RouterId) {
        self.watched.remove(&peer);
    }

    /// Feeds the latest routing table; returns the transitions since the
    /// previous call, in ascending peer order.
    pub fn update(&mut self, table: &RouteTable) -> Vec<ReachabilityEvent> {
        let mut events = Vec::new();
        for (peer, was_up) in self.watched.iter_mut() {
            let now_up = table.reaches(*peer);
            if now_up != *was_up {
                *was_up = now_up;
                events.push(if now_up {
                    ReachabilityEvent::Up(*peer)
                } else {
                    ReachabilityEvent::Down(*peer)
                });
            }
        }
        events
    }

    /// Is `peer` currently believed reachable?
    pub fn is_up(&self, peer: RouterId) -> bool {
        self.watched.get(&peer).copied().unwrap_or(false)
    }

    /// Peers currently believed reachable, ascending.
    pub fn up_peers(&self) -> impl Iterator<Item = RouterId> + '_ {
        self.watched.iter().filter(|(_, up)| **up).map(|(p, _)| *p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsdb::{Lsa, Lsdb};
    use crate::spf::spf;
    use crate::topology::Topology;

    fn table_for(t: &Topology, src: u32) -> RouteTable {
        let mut db = Lsdb::new();
        for r in t.routers() {
            db.install(Lsa::new(r, 1, t.neighbors(r).collect()));
        }
        spf(&db, RouterId(src))
    }

    #[test]
    fn up_then_down_emits_transitions_once() {
        let mut t = Topology::line(3);
        let mut tracker = ReachabilityTracker::new([RouterId(2)]);
        assert!(!tracker.is_up(RouterId(2)));

        let events = tracker.update(&table_for(&t, 0));
        assert_eq!(events, vec![ReachabilityEvent::Up(RouterId(2))]);
        // Stable: no repeat events.
        assert!(tracker.update(&table_for(&t, 0)).is_empty());
        assert!(tracker.is_up(RouterId(2)));

        t.remove_link(RouterId(1), RouterId(2));
        let events = tracker.update(&table_for(&t, 0));
        assert_eq!(events, vec![ReachabilityEvent::Down(RouterId(2))]);
        assert!(!tracker.is_up(RouterId(2)));
    }

    #[test]
    fn only_watched_peers_reported() {
        let t = Topology::line(4);
        let mut tracker = ReachabilityTracker::new([RouterId(3)]);
        let events = tracker.update(&table_for(&t, 0));
        assert_eq!(events.len(), 1, "router 1 and 2 are not watched");
    }

    #[test]
    fn watch_unwatch() {
        let t = Topology::line(2);
        let mut tracker = ReachabilityTracker::default();
        tracker.watch(RouterId(1));
        assert_eq!(tracker.update(&table_for(&t, 0)).len(), 1);
        tracker.unwatch(RouterId(1));
        assert!(!tracker.is_up(RouterId(1)));
        assert_eq!(tracker.up_peers().count(), 0);
    }
}
