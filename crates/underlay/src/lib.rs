//! # sda-underlay
//!
//! The plain-IP underlay that routes encapsulated traffic between fabric
//! routers. SDA deployments run OSPF or IS-IS here; this crate implements
//! a link-state protocol with the features the fabric depends on:
//!
//! * **Hello/adjacency** — neighbors exchange hellos; a missed dead
//!   interval tears the adjacency down.
//! * **LSA flooding** — routers originate link-state advertisements with
//!   sequence numbers and flood them; newer LSAs displace older ones.
//! * **SPF with ECMP** — Dijkstra shortest paths keeping *all* equal-cost
//!   next hops (§3.3: "ECMP for redundancy").
//! * **Reachability watch** — the mechanism of §5.1/§5.2: edge routers
//!   monitor the underlay protocol's address announcements to learn
//!   whether peer RLOCs are reachable, and fall back to the border when
//!   one disappears (also how transient reboot loops are broken).
//!
//! The router is a *pure state machine* ([`protocol::LinkStateRouter`]):
//! inputs are messages and ticks, outputs are `(neighbor, message)` pairs.
//! `sda-core` adapts it onto the simulator; tests drive it synchronously.

pub mod lsdb;
pub mod protocol;
pub mod reachability;
pub mod spf;
pub mod topology;

pub use lsdb::{Lsa, Lsdb};
pub use protocol::{LinkStateRouter, Message, ProtocolConfig};
pub use reachability::{ReachabilityEvent, ReachabilityTracker};
pub use spf::{spf, RouteTable};
pub use topology::Topology;
