//! The link-state database: every router's view of the network.

use std::collections::BTreeMap;

use sda_types::RouterId;

/// A link-state advertisement: one router's current adjacency set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Lsa {
    /// The advertising router.
    pub origin: RouterId,
    /// Monotonic per-origin sequence number; higher wins.
    pub seq: u64,
    /// The origin's live links `(neighbor, cost)`, sorted by neighbor.
    pub links: Vec<(RouterId, u32)>,
}

impl Lsa {
    /// Creates an LSA, normalizing link order.
    pub fn new(origin: RouterId, seq: u64, mut links: Vec<(RouterId, u32)>) -> Self {
        links.sort_unstable();
        links.dedup_by_key(|(n, _)| *n);
        Lsa { origin, seq, links }
    }
}

/// The collected LSAs, newest sequence per origin.
#[derive(Clone, Default, Debug)]
pub struct Lsdb {
    entries: BTreeMap<RouterId, Lsa>,
}

impl Lsdb {
    /// Empty database.
    pub fn new() -> Self {
        Lsdb::default()
    }

    /// Installs `lsa` if it is newer than the stored one for its origin.
    /// Returns true when the database changed (the flood-on rule).
    pub fn install(&mut self, lsa: Lsa) -> bool {
        match self.entries.get(&lsa.origin) {
            Some(existing) if existing.seq >= lsa.seq => false,
            _ => {
                self.entries.insert(lsa.origin, lsa);
                true
            }
        }
    }

    /// The stored LSA for `origin`.
    pub fn get(&self, origin: RouterId) -> Option<&Lsa> {
        self.entries.get(&origin)
    }

    /// All LSAs, ascending by origin.
    pub fn iter(&self) -> impl Iterator<Item = &Lsa> {
        self.entries.values()
    }

    /// Number of distinct origins known.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no LSAs are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The *bidirectionally confirmed* adjacency view: a link `a→b` is
    /// used by SPF only if `b` also advertises `a` (standard two-way
    /// connectivity check, which is what quarantines a rebooting router
    /// that has stopped advertising).
    pub fn confirmed_neighbors(&self, r: RouterId) -> Vec<(RouterId, u32)> {
        let Some(lsa) = self.entries.get(&r) else {
            return Vec::new();
        };
        lsa.links
            .iter()
            .filter(|(n, _)| {
                self.entries
                    .get(n)
                    .map(|back| back.links.iter().any(|(m, _)| *m == r))
                    .unwrap_or(false)
            })
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lsa(origin: u32, seq: u64, links: &[(u32, u32)]) -> Lsa {
        Lsa::new(
            RouterId(origin),
            seq,
            links.iter().map(|(n, c)| (RouterId(*n), *c)).collect(),
        )
    }

    #[test]
    fn newer_seq_wins() {
        let mut db = Lsdb::new();
        assert!(db.install(lsa(1, 1, &[(2, 1)])));
        assert!(!db.install(lsa(1, 1, &[(3, 1)])), "same seq rejected");
        assert!(!db.install(lsa(1, 0, &[(3, 1)])), "older rejected");
        assert!(db.install(lsa(1, 2, &[(3, 1)])));
        assert_eq!(db.get(RouterId(1)).unwrap().links, vec![(RouterId(3), 1)]);
    }

    #[test]
    fn links_are_normalized() {
        let l = lsa(1, 1, &[(3, 1), (2, 5), (3, 9)]);
        assert_eq!(l.links, vec![(RouterId(2), 5), (RouterId(3), 1)]);
    }

    #[test]
    fn confirmed_requires_two_way() {
        let mut db = Lsdb::new();
        db.install(lsa(1, 1, &[(2, 1), (3, 1)]));
        db.install(lsa(2, 1, &[(1, 1)]));
        db.install(lsa(3, 1, &[])); // 3 does not confirm the link back
        let n = db.confirmed_neighbors(RouterId(1));
        assert_eq!(n, vec![(RouterId(2), 1)]);
        assert!(db.confirmed_neighbors(RouterId(9)).is_empty());
    }

    #[test]
    fn iter_sorted_by_origin() {
        let mut db = Lsdb::new();
        db.install(lsa(5, 1, &[]));
        db.install(lsa(2, 1, &[]));
        let origins: Vec<u32> = db.iter().map(|l| l.origin.0).collect();
        assert_eq!(origins, vec![2, 5]);
        assert_eq!(db.len(), 2);
    }
}
