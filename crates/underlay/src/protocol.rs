//! The link-state protocol state machine: hellos, adjacency tracking and
//! LSA flooding.
//!
//! [`LinkStateRouter`] is a pure state machine: callers feed it messages
//! and periodic ticks; it returns the messages to transmit. This keeps it
//! independently testable and lets `sda-core` adapt it onto the
//! simulator's node trait.

use std::collections::BTreeMap;

use sda_simnet::{SimDuration, SimTime};
use sda_types::RouterId;

use crate::lsdb::{Lsa, Lsdb};
use crate::spf::{spf, RouteTable};

/// Protocol messages exchanged between direct neighbors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Message {
    /// Periodic keepalive. Carries the sender's live-neighbor list (the
    /// OSPF "two-way check"): a hello that does not list the receiver
    /// tells the receiver the sender has restarted and needs a full
    /// database exchange.
    Hello {
        /// The sending router.
        from: RouterId,
        /// Neighbors the sender currently considers up.
        seen: Vec<RouterId>,
    },
    /// A flooded link-state advertisement.
    Flood(Lsa),
}

/// Timer configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolConfig {
    /// Hello transmission interval.
    pub hello_interval: SimDuration,
    /// Adjacency declared dead after this silence.
    pub dead_interval: SimDuration,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        // OSPF-ish defaults scaled down for campus convergence tests.
        ProtocolConfig {
            hello_interval: SimDuration::from_secs(1),
            dead_interval: SimDuration::from_secs(4),
        }
    }
}

/// Per-neighbor adjacency state.
#[derive(Clone, Copy, Debug)]
struct Adjacency {
    cost: u32,
    up: bool,
    last_hello: SimTime,
}

/// A link-state router instance.
pub struct LinkStateRouter {
    id: RouterId,
    config: ProtocolConfig,
    /// Configured local links (physical wiring), regardless of liveness.
    configured: BTreeMap<RouterId, u32>,
    adjacencies: BTreeMap<RouterId, Adjacency>,
    lsdb: Lsdb,
    seq: u64,
    last_hello_tx: Option<SimTime>,
}

/// Messages to transmit: `(neighbor, message)` pairs.
pub type Outbox = Vec<(RouterId, Message)>;

impl LinkStateRouter {
    /// Creates a router with its configured local links.
    pub fn new(id: RouterId, links: impl IntoIterator<Item = (RouterId, u32)>) -> Self {
        LinkStateRouter {
            id,
            config: ProtocolConfig::default(),
            configured: links.into_iter().collect(),
            adjacencies: BTreeMap::new(),
            lsdb: Lsdb::new(),
            seq: 0,
            last_hello_tx: None,
        }
    }

    /// Overrides timer configuration.
    pub fn with_config(mut self, config: ProtocolConfig) -> Self {
        self.config = config;
        self
    }

    /// This router's id.
    pub fn id(&self) -> RouterId {
        self.id
    }

    /// Read access to the LSDB (for reachability tracking).
    pub fn lsdb(&self) -> &Lsdb {
        &self.lsdb
    }

    /// Current routing table from this router's perspective.
    pub fn routes(&self) -> RouteTable {
        spf(&self.lsdb, self.id)
    }

    /// Live (up) adjacencies.
    fn live_links(&self) -> Vec<(RouterId, u32)> {
        self.adjacencies
            .iter()
            .filter(|(_, a)| a.up)
            .map(|(n, a)| (*n, a.cost))
            .collect()
    }

    fn originate(&mut self, now: SimTime) -> Outbox {
        self.seq += 1;
        let lsa = Lsa::new(self.id, self.seq, self.live_links());
        self.lsdb.install(lsa.clone());
        let _ = now;
        self.flood_to_all(&lsa, None)
    }

    fn flood_to_all(&self, lsa: &Lsa, except: Option<RouterId>) -> Outbox {
        self.adjacencies
            .iter()
            .filter(|(n, a)| a.up && Some(**n) != except)
            .map(|(n, _)| (*n, Message::Flood(lsa.clone())))
            .collect()
    }

    /// Periodic tick: emits hellos, expires dead adjacencies,
    /// re-originates the local LSA on change. Call at least once per
    /// hello interval.
    pub fn tick(&mut self, now: SimTime) -> Outbox {
        let mut out = Outbox::new();

        // Expire adjacencies that missed the dead interval.
        let mut changed = false;
        for (_, adj) in self.adjacencies.iter_mut() {
            if adj.up && now.saturating_since(adj.last_hello) >= self.config.dead_interval {
                adj.up = false;
                changed = true;
            }
        }

        // Hellos to every configured neighbor (up or not — that's how a
        // recovered neighbor is re-discovered).
        let due = match self.last_hello_tx {
            None => true,
            Some(t) => now.saturating_since(t) >= self.config.hello_interval,
        };
        if due {
            self.last_hello_tx = Some(now);
            let seen: Vec<RouterId> = self.live_links().iter().map(|(n, _)| *n).collect();
            for n in self.configured.keys() {
                out.push((
                    *n,
                    Message::Hello {
                        from: self.id,
                        seen: seen.clone(),
                    },
                ));
            }
        }

        if changed {
            out.extend(self.originate(now));
        }
        out
    }

    /// Handles a protocol message received from direct neighbor `from`.
    pub fn handle(&mut self, from: RouterId, msg: Message, now: SimTime) -> Outbox {
        match msg {
            Message::Hello { from, seen } => {
                let Some(&cost) = self.configured.get(&from) else {
                    return Outbox::new(); // hello from a non-neighbor
                };
                let adj = self.adjacencies.entry(from).or_insert(Adjacency {
                    cost,
                    up: false,
                    last_hello: now,
                });
                adj.last_hello = now;
                // Two-way check: a live neighbor whose hello no longer
                // lists us has restarted — drop to "new adjacency" so the
                // full database exchange below runs again.
                let restarted = adj.up && !seen.contains(&self.id);
                if !adj.up || restarted {
                    adj.up = true;
                    // New adjacency: advertise it, and give the neighbor
                    // our whole LSDB so it converges in one exchange.
                    let mut out = self.originate(now);
                    let lsas: Vec<Lsa> = self.lsdb.iter().cloned().collect();
                    for lsa in lsas {
                        out.push((from, Message::Flood(lsa)));
                    }
                    return out;
                }
                Outbox::new()
            }
            Message::Flood(lsa) => {
                if lsa.origin == self.id {
                    // Never accept someone else's version of our own LSA
                    // with a higher seq — bump past it and re-originate
                    // (OSPF "self-originated LSA" handling, simplified).
                    // This is how a rebooted router recovers its sequence
                    // number and re-announces itself.
                    if lsa.seq > self.seq {
                        self.seq = lsa.seq;
                        return self.originate(now);
                    }
                    return Outbox::new();
                }
                if self.lsdb.install(lsa.clone()) {
                    // Changed: flood onward (split horizon is best-effort;
                    // seq numbers stop loops regardless).
                    return self.flood_to_all(&lsa, None);
                }
                // Not installed: if we hold a strictly newer copy, send it
                // back so a stale sender (e.g. freshly rebooted) catches
                // up — OSPF's "database is newer, reply with ours".
                if let Some(stored) = self.lsdb.get(lsa.origin) {
                    if stored.seq > lsa.seq {
                        return vec![(from, Message::Flood(stored.clone()))];
                    }
                }
                Outbox::new()
            }
        }
    }

    /// Convenience used by the fabric: is `dst` currently reachable?
    pub fn reaches(&self, dst: RouterId) -> bool {
        self.routes().reaches(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use std::collections::VecDeque;

    /// Synchronous harness: runs routers to quiescence, delivering
    /// messages breadth-first with zero latency.
    struct Harness {
        routers: BTreeMap<RouterId, LinkStateRouter>,
        now: SimTime,
    }

    impl Harness {
        fn from_topology(t: &Topology) -> Self {
            let routers = t
                .routers()
                .map(|r| (r, LinkStateRouter::new(r, t.neighbors(r))))
                .collect();
            Harness {
                now: SimTime::ZERO,
                routers,
            }
        }

        fn advance(&mut self, d: SimDuration) {
            self.now += d;
        }

        /// One tick on every router, then deliver until quiet.
        fn settle(&mut self) {
            let mut queue: VecDeque<(RouterId, RouterId, Message)> = VecDeque::new();
            let now = self.now;
            for (id, router) in self.routers.iter_mut() {
                for (to, msg) in router.tick(now) {
                    queue.push_back((*id, to, msg));
                }
            }
            let mut guard = 0;
            while let Some((from, to, msg)) = queue.pop_front() {
                guard += 1;
                assert!(guard < 100_000, "flooding did not converge");
                if let Some(r) = self.routers.get_mut(&to) {
                    for (next_to, next_msg) in r.handle(from, msg, now) {
                        queue.push_back((to, next_to, next_msg));
                    }
                }
            }
        }

        fn router(&self, id: u32) -> &LinkStateRouter {
            &self.routers[&RouterId(id)]
        }
    }

    #[test]
    fn full_mesh_converges_after_two_rounds() {
        let t = Topology::spine_leaf(2, 4);
        let mut h = Harness::from_topology(&t);
        h.settle(); // adjacencies come up, LSAs flood
        h.advance(SimDuration::from_secs(1));
        h.settle(); // steady state
        for r in 0..6 {
            let table = h.router(r).routes();
            assert_eq!(table.len(), 6, "router {r} must reach all 6");
        }
    }

    #[test]
    fn dead_interval_tears_down_and_spf_reroutes() {
        // Square: 0-1, 1-3, 0-2, 2-3.
        let mut t = Topology::new();
        t.add_link(RouterId(0), RouterId(1), 1);
        t.add_link(RouterId(1), RouterId(3), 1);
        t.add_link(RouterId(0), RouterId(2), 1);
        t.add_link(RouterId(2), RouterId(3), 1);
        let mut h = Harness::from_topology(&t);
        h.settle();
        h.advance(SimDuration::from_secs(1));
        h.settle();
        assert!(h.router(0).reaches(RouterId(3)));

        // Kill router 1: remove it from the harness so it neither hellos
        // nor floods; after the dead interval others expire it.
        h.routers.remove(&RouterId(1));
        for _ in 0..6 {
            h.advance(SimDuration::from_secs(1));
            h.settle();
        }
        let table = h.router(0).routes();
        assert!(!table.reaches(RouterId(1)), "dead router must disappear");
        let (cost, hops) = table.route(RouterId(3)).unwrap();
        assert_eq!(cost, 2);
        assert_eq!(hops, &[RouterId(2)], "traffic must reroute via 2");
    }

    #[test]
    fn hello_from_stranger_ignored() {
        let mut r = LinkStateRouter::new(RouterId(1), vec![(RouterId(2), 1)]);
        let out = r.handle(
            RouterId(99),
            Message::Hello {
                from: RouterId(99),
                seen: vec![],
            },
            SimTime::ZERO,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn self_originated_echo_bumps_sequence() {
        let mut r = LinkStateRouter::new(RouterId(1), vec![(RouterId(2), 1)]);
        // Bring the adjacency up.
        r.handle(
            RouterId(2),
            Message::Hello {
                from: RouterId(2),
                seen: vec![RouterId(1)],
            },
            SimTime::ZERO,
        );
        let stale = Lsa::new(RouterId(1), 50, vec![]);
        let out = r.handle(RouterId(2), Message::Flood(stale), SimTime::ZERO);
        // The router must re-originate with seq > 50.
        let reissued = out.iter().find_map(|(_, m)| match m {
            Message::Flood(l) if l.origin == RouterId(1) => Some(l.seq),
            _ => None,
        });
        assert!(reissued.unwrap() > 50);
    }

    #[test]
    fn rejoin_after_recovery() {
        let t = Topology::line(3);
        let mut h = Harness::from_topology(&t);
        h.settle();
        h.advance(SimDuration::from_secs(1));
        h.settle();
        assert!(h.router(0).reaches(RouterId(2)));

        // Router 1 "reboots": replace with a fresh instance (empty LSDB).
        let links: Vec<(RouterId, u32)> = t.neighbors(RouterId(1)).collect();
        h.routers
            .insert(RouterId(1), LinkStateRouter::new(RouterId(1), links));
        for _ in 0..3 {
            h.advance(SimDuration::from_secs(1));
            h.settle();
        }
        assert!(
            h.router(0).reaches(RouterId(2)),
            "recovered router must rejoin"
        );
        assert!(h.router(1).reaches(RouterId(0)));
        assert!(h.router(1).reaches(RouterId(2)));
    }
}
