//! Shortest-path-first (Dijkstra) with equal-cost multipath next hops.

use std::collections::{BTreeMap, BinaryHeap};

use sda_types::RouterId;

use crate::lsdb::Lsdb;

/// The result of an SPF run from one source router.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouteTable {
    /// destination → (total cost, sorted ECMP next-hop set).
    routes: BTreeMap<RouterId, (u32, Vec<RouterId>)>,
}

impl RouteTable {
    /// The cost and ECMP next hops toward `dst`, if reachable.
    pub fn route(&self, dst: RouterId) -> Option<(u32, &[RouterId])> {
        self.routes.get(&dst).map(|(c, n)| (*c, n.as_slice()))
    }

    /// True when `dst` is reachable.
    pub fn reaches(&self, dst: RouterId) -> bool {
        self.routes.contains_key(&dst)
    }

    /// Deterministically picks one ECMP next hop for `dst`, using `flow`
    /// as the hash input (same flow → same path, the ECMP contract).
    pub fn next_hop(&self, dst: RouterId, flow: u64) -> Option<RouterId> {
        let (_, hops) = self.routes.get(&dst)?;
        if hops.is_empty() {
            return None; // dst == src
        }
        // Fibonacci hashing spreads sequential flow ids across hops.
        let idx = (flow.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % hops.len();
        Some(hops[idx])
    }

    /// All reachable destinations, ascending.
    pub fn destinations(&self) -> impl Iterator<Item = RouterId> + '_ {
        self.routes.keys().copied()
    }

    /// Number of reachable destinations (including the source itself).
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when empty (source unknown to the LSDB).
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[derive(PartialEq, Eq)]
struct QueueEntry {
    cost: u32,
    node: RouterId,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Min-heap by (cost, node id) for determinism.
        (other.cost, other.node).cmp(&(self.cost, self.node))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs Dijkstra over the *bidirectionally confirmed* links in `lsdb`
/// from `src`, collecting every equal-cost next hop.
pub fn spf(lsdb: &Lsdb, src: RouterId) -> RouteTable {
    let mut table = RouteTable::default();
    if lsdb.get(src).is_none() {
        return table;
    }

    // dist[n], next_hops[n] built incrementally.
    let mut dist: BTreeMap<RouterId, u32> = BTreeMap::new();
    let mut hops: BTreeMap<RouterId, Vec<RouterId>> = BTreeMap::new();
    let mut done: BTreeMap<RouterId, bool> = BTreeMap::new();
    let mut heap = BinaryHeap::new();

    dist.insert(src, 0);
    hops.insert(src, Vec::new());
    heap.push(QueueEntry { cost: 0, node: src });

    while let Some(QueueEntry { cost, node }) = heap.pop() {
        if *done.get(&node).unwrap_or(&false) {
            continue;
        }
        done.insert(node, true);
        table
            .routes
            .insert(node, (cost, hops.get(&node).cloned().unwrap_or_default()));

        for (neigh, link_cost) in lsdb.confirmed_neighbors(node) {
            let cand = cost + link_cost;
            let current = dist.get(&neigh).copied();
            // Next hops toward `neigh` through `node`: if node is the
            // source, the next hop is `neigh` itself; otherwise inherit.
            let via: Vec<RouterId> = if node == src {
                vec![neigh]
            } else {
                hops.get(&node).cloned().unwrap_or_default()
            };
            match current {
                None => {
                    dist.insert(neigh, cand);
                    hops.insert(neigh, via);
                    heap.push(QueueEntry {
                        cost: cand,
                        node: neigh,
                    });
                }
                Some(cur) if cand < cur => {
                    dist.insert(neigh, cand);
                    hops.insert(neigh, via);
                    heap.push(QueueEntry {
                        cost: cand,
                        node: neigh,
                    });
                }
                Some(cur) if cand == cur => {
                    // Equal cost: merge next-hop sets.
                    let set = hops.entry(neigh).or_default();
                    for h in via {
                        if !set.contains(&h) {
                            set.push(h);
                        }
                    }
                    set.sort_unstable();
                }
                _ => {}
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsdb::Lsa;
    use crate::topology::Topology;

    /// Builds a fully synchronized LSDB from a topology (every router
    /// advertises its true adjacency).
    fn full_lsdb(t: &Topology) -> Lsdb {
        let mut db = Lsdb::new();
        for r in t.routers() {
            db.install(Lsa::new(r, 1, t.neighbors(r).collect()));
        }
        db
    }

    #[test]
    fn line_costs_accumulate() {
        let t = Topology::line(4);
        let db = full_lsdb(&t);
        let table = spf(&db, RouterId(0));
        assert_eq!(table.route(RouterId(3)).unwrap().0, 3);
        assert_eq!(table.route(RouterId(3)).unwrap().1, &[RouterId(1)]);
        assert_eq!(table.route(RouterId(0)).unwrap().0, 0);
        assert_eq!(table.len(), 4);
    }

    #[test]
    fn ecmp_keeps_all_equal_paths() {
        // Diamond: 0—1—3 and 0—2—3, all cost 1.
        let mut t = Topology::new();
        t.add_link(RouterId(0), RouterId(1), 1);
        t.add_link(RouterId(0), RouterId(2), 1);
        t.add_link(RouterId(1), RouterId(3), 1);
        t.add_link(RouterId(2), RouterId(3), 1);
        let db = full_lsdb(&t);
        let table = spf(&db, RouterId(0));
        let (cost, hops) = table.route(RouterId(3)).unwrap();
        assert_eq!(cost, 2);
        assert_eq!(hops, &[RouterId(1), RouterId(2)]);
    }

    #[test]
    fn next_hop_is_flow_stable() {
        let t = Topology::spine_leaf(2, 4);
        let db = full_lsdb(&t);
        let table = spf(&db, RouterId(2)); // a leaf
        let dst = RouterId(5); // another leaf, 2 ECMP paths via spines
        let h1 = table.next_hop(dst, 42).unwrap();
        let h2 = table.next_hop(dst, 42).unwrap();
        assert_eq!(h1, h2, "same flow must take the same path");
        // Different flows eventually use both spines.
        let used: std::collections::BTreeSet<RouterId> =
            (0..64).filter_map(|f| table.next_hop(dst, f)).collect();
        assert_eq!(used.len(), 2, "ECMP should spread flows");
    }

    #[test]
    fn cheaper_path_wins_over_fewer_hops() {
        let mut t = Topology::new();
        t.add_link(RouterId(0), RouterId(1), 10);
        t.add_link(RouterId(0), RouterId(2), 1);
        t.add_link(RouterId(2), RouterId(1), 2);
        let db = full_lsdb(&t);
        let table = spf(&db, RouterId(0));
        let (cost, hops) = table.route(RouterId(1)).unwrap();
        assert_eq!(cost, 3);
        assert_eq!(hops, &[RouterId(2)]);
    }

    #[test]
    fn partition_unreachable() {
        let mut t = Topology::line(2);
        t.add_router(RouterId(9)); // isolated
        let db = full_lsdb(&t);
        let table = spf(&db, RouterId(0));
        assert!(table.reaches(RouterId(1)));
        assert!(!table.reaches(RouterId(9)));
    }

    #[test]
    fn one_way_advertisement_not_used() {
        // Router 1 claims a link to 2, but 2 does not confirm: a
        // rebooting router that stopped advertising.
        let mut db = Lsdb::new();
        db.install(Lsa::new(RouterId(0), 1, vec![(RouterId(1), 1)]));
        db.install(Lsa::new(
            RouterId(1),
            1,
            vec![(RouterId(0), 1), (RouterId(2), 1)],
        ));
        db.install(Lsa::new(RouterId(2), 1, vec![]));
        let table = spf(&db, RouterId(0));
        assert!(table.reaches(RouterId(1)));
        assert!(
            !table.reaches(RouterId(2)),
            "unconfirmed link must not be used"
        );
    }

    #[test]
    fn unknown_source_yields_empty() {
        let db = Lsdb::new();
        assert!(spf(&db, RouterId(7)).is_empty());
    }
}
