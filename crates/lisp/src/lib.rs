//! # sda-lisp
//!
//! The SDA **routing server** (LISP map-server) and the edge-side
//! **map-cache**: the reactive control plane at the heart of the paper.
//!
//! * [`registry::MappingDb`] — the `(VN, EID) → RLOC` database, one
//!   Patricia trie per VN per address family (§3.2.2, Table 2 row 3).
//! * [`map_server::MapServer`] — a pure state machine speaking
//!   [`sda_wire::lisp::Message`]: Map-Request/Reply, Map-Register with
//!   move detection (Fig. 5), Map-Notify to the previous edge, negative
//!   replies for unknown EIDs, and pub/sub publishes to subscribed
//!   borders.
//! * [`map_cache::MapCache`] — the edge router's on-demand FIB: TTL'd
//!   entries, idle decay, SMR/underlay-event invalidation, negative
//!   caching. Its `len()` *is* the Fig. 9 "FIB entries" series.
//! * [`pubsub::SubscriberTable`] — border-router synchronization
//!   (§3.3: "their FIB table is synchronized with the routing server").
//! * [`smr::SmrTracker`] — dedup window for the data-triggered
//!   Solicit-Map-Request messages of Fig. 6.
//! * [`shard::ShardedMapServer`] — the horizontal-scaling deployment of
//!   §4.1 (requests load-balanced by edge group, updates fan to all).
//!
//! ## Service-time model
//!
//! The paper's Fig. 7 measures a commercial virtual router. We model the
//! map-server control CPU as a single-server FIFO queue whose service
//! times ([`map_server::REQUEST_SERVICE`], [`map_server::UPDATE_SERVICE`])
//! are *independent of the number of stored routes* — true by
//! construction, because the Patricia trie's cost depends on key width
//! only. Fig. 7c's load-dependent growth then falls out of queueing,
//! exactly as on the real server.

pub mod map_cache;
pub mod map_server;
pub mod pubsub;
pub mod registry;
pub mod shard;
pub mod smr;

pub use map_cache::{CacheEntry, CacheOutcome, MapCache};
pub use map_server::{MapServer, MapServerStats, Outbox, REQUEST_SERVICE, UPDATE_SERVICE};
pub use pubsub::SubscriberTable;
pub use registry::{MappingDb, MappingRecord, RegisterOutcome};
pub use shard::ShardedMapServer;
pub use smr::SmrTracker;
