//! The `(VN, EID) → RLOC` mapping database.
//!
//! Table 2, row "Endpoint Location": key = VN + overlay address, value =
//! underlay address, updated by edge routers. Registrations carry a TTL;
//! expired entries answer as if absent (the registering edge refreshes
//! them periodically in a live deployment).

use std::collections::BTreeMap;

use sda_simnet::{SimDuration, SimTime};
use sda_trie::EidTrie;
use sda_types::{Eid, EidPrefix, Rloc, VnId};

/// One registered mapping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MappingRecord {
    /// The edge router currently serving the EID.
    pub rloc: Rloc,
    /// Registration lifetime.
    pub ttl: SimDuration,
    /// When the registration (or last refresh) happened.
    pub registered_at: SimTime,
    /// Bumped on every register for this EID (move detection, pub/sub
    /// ordering).
    pub version: u64,
}

impl MappingRecord {
    /// Whether the registration has expired at `now`.
    pub fn expired(&self, now: SimTime) -> bool {
        now.saturating_since(self.registered_at) >= self.ttl
    }
}

/// Outcome of a register operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegisterOutcome {
    /// First registration of this EID.
    New,
    /// Same RLOC re-registered (refresh).
    Refreshed,
    /// The EID moved; carries the previous RLOC (Fig. 5: the server
    /// notifies this edge so it forwards in-flight traffic).
    Moved {
        /// Where the EID was registered before.
        previous: Rloc,
    },
}

/// The per-VN mapping database.
#[derive(Default)]
pub struct MappingDb {
    vns: BTreeMap<VnId, EidTrie<MappingRecord>>,
    version_counter: u64,
    /// Maintained entry count, so [`MappingDb::len`] is O(1) instead of
    /// a sum over every per-VN trie (the map-server answers `len` on
    /// every Fig. 7 sample). Invariant: always equals
    /// [`MappingDb::recount`] (checked by the property tests).
    total: usize,
}

impl MappingDb {
    /// Empty database.
    pub fn new() -> Self {
        MappingDb::default()
    }

    /// Registers (or refreshes) `eid → rloc` in `vn`.
    pub fn register(
        &mut self,
        vn: VnId,
        eid: Eid,
        rloc: Rloc,
        ttl: SimDuration,
        now: SimTime,
    ) -> RegisterOutcome {
        self.version_counter += 1;
        let record = MappingRecord {
            rloc,
            ttl,
            registered_at: now,
            version: self.version_counter,
        };
        let trie = self.vns.entry(vn).or_default();
        let prefix = EidPrefix::host(eid);
        let prev = trie.insert(prefix, record);
        if prev.is_none() {
            self.total += 1;
        }
        match prev {
            None => RegisterOutcome::New,
            Some(old) if old.expired(now) => RegisterOutcome::New,
            Some(old) if old.rloc == rloc => RegisterOutcome::Refreshed,
            Some(old) => RegisterOutcome::Moved { previous: old.rloc },
        }
    }

    /// Removes the registration of `eid` in `vn`.
    pub fn withdraw(&mut self, vn: VnId, eid: Eid) -> Option<MappingRecord> {
        let removed = self.vns.get_mut(&vn)?.remove(&EidPrefix::host(eid));
        if removed.is_some() {
            self.total -= 1;
        }
        removed
    }

    /// Longest-prefix lookup of `eid` in `vn`; expired records answer
    /// `None` (the §4.2 "route resolution with a negative result").
    pub fn lookup(&self, vn: VnId, eid: Eid, now: SimTime) -> Option<(EidPrefix, MappingRecord)> {
        let (prefix, rec) = self.vns.get(&vn)?.lookup(&eid)?;
        if rec.expired(now) {
            return None;
        }
        Some((prefix, *rec))
    }

    /// Live registrations in `vn` at `now`.
    pub fn live_count(&self, vn: VnId, now: SimTime) -> usize {
        self.vns
            .get(&vn)
            .map(|t| t.iter().filter(|(_, r)| !r.expired(now)).count())
            .unwrap_or(0)
    }

    /// Total registrations (live or expired) across VNs. O(1): the
    /// count is maintained across register/withdraw/retain, not
    /// recomputed.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Recomputes the entry count from the tries (O(entries)). Exists so
    /// tests can assert the maintained counter never drifts; production
    /// callers should use [`MappingDb::len`].
    pub fn recount(&self) -> usize {
        self.vns.values().map(EidTrie::len).sum()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates all `(vn, prefix, record)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (VnId, EidPrefix, &MappingRecord)> {
        self.vns
            .iter()
            .flat_map(|(vn, trie)| trie.iter().map(move |(p, r)| (*vn, p, r)))
    }

    /// Iterates `(prefix, record)` entries of one VN only — O(that VN),
    /// not O(database). Pub/sub snapshots walk exactly the subscribed VN
    /// through this.
    pub fn iter_vn(&self, vn: VnId) -> impl Iterator<Item = (EidPrefix, &MappingRecord)> {
        self.vns.get(&vn).into_iter().flat_map(EidTrie::iter)
    }

    /// Keeps only registrations for which `f` returns true, in one
    /// traversal per VN. Returns how many were removed.
    pub fn retain<F: FnMut(VnId, &EidPrefix, &mut MappingRecord) -> bool>(
        &mut self,
        mut f: F,
    ) -> usize {
        let mut removed = 0;
        for (vn, trie) in self.vns.iter_mut() {
            removed += trie.retain(|p, r| f(*vn, p, r));
        }
        self.total -= removed;
        removed
    }

    /// Drops expired registrations, returning how many were purged — a
    /// single traversal per VN via [`EidTrie::retain`].
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        self.retain(|_, _, r| !r.expired(now))
    }

    /// Re-lays every per-VN trie arena in DFS preorder (see
    /// [`sda_trie::PatriciaTrie::compact`]). Call once a registration
    /// storm (network bring-up) settles so Fig. 7 lookups walk
    /// nearly-sequential memory.
    pub fn compact(&mut self) {
        sda_trie::compact_each(self.vns.values_mut());
    }

    /// Aggregated trie-arena diagnostics across all VNs.
    pub fn mem_stats(&self) -> sda_trie::MemStats {
        sda_trie::merged_mem_stats(self.vns.values())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    fn eid(n: u8) -> Eid {
        Eid::V4(Ipv4Addr::new(10, 0, 0, n))
    }

    const TTL: SimDuration = SimDuration::from_secs(300);

    #[test]
    fn register_lookup_roundtrip() {
        let mut db = MappingDb::new();
        let out = db.register(vn(1), eid(1), Rloc::for_router_index(1), TTL, SimTime::ZERO);
        assert_eq!(out, RegisterOutcome::New);
        let (prefix, rec) = db.lookup(vn(1), eid(1), SimTime::ZERO).unwrap();
        assert!(prefix.is_host());
        assert_eq!(rec.rloc, Rloc::for_router_index(1));
    }

    #[test]
    fn vn_isolation() {
        let mut db = MappingDb::new();
        db.register(vn(1), eid(1), Rloc::for_router_index(1), TTL, SimTime::ZERO);
        assert!(db.lookup(vn(2), eid(1), SimTime::ZERO).is_none());
    }

    #[test]
    fn move_detection() {
        let mut db = MappingDb::new();
        let r1 = Rloc::for_router_index(1);
        let r2 = Rloc::for_router_index(2);
        db.register(vn(1), eid(1), r1, TTL, SimTime::ZERO);
        assert_eq!(
            db.register(vn(1), eid(1), r1, TTL, SimTime::ZERO),
            RegisterOutcome::Refreshed
        );
        assert_eq!(
            db.register(vn(1), eid(1), r2, TTL, SimTime::ZERO),
            RegisterOutcome::Moved { previous: r1 }
        );
        let (_, rec) = db.lookup(vn(1), eid(1), SimTime::ZERO).unwrap();
        assert_eq!(rec.rloc, r2);
    }

    #[test]
    fn expiry_hides_and_purges() {
        let mut db = MappingDb::new();
        db.register(vn(1), eid(1), Rloc::for_router_index(1), TTL, SimTime::ZERO);
        let later = SimTime::ZERO + TTL + SimDuration::from_secs(1);
        assert!(db.lookup(vn(1), eid(1), later).is_none());
        assert_eq!(db.live_count(vn(1), later), 0);
        assert_eq!(db.len(), 1, "expired entry still occupies storage");
        assert_eq!(db.purge_expired(later), 1);
        assert_eq!(db.len(), 0);
        // Registering after expiry counts as New, not Moved.
        let out = db.register(vn(1), eid(1), Rloc::for_router_index(2), TTL, later);
        assert_eq!(out, RegisterOutcome::New);
    }

    #[test]
    fn refresh_extends_lifetime() {
        let mut db = MappingDb::new();
        let r1 = Rloc::for_router_index(1);
        db.register(vn(1), eid(1), r1, TTL, SimTime::ZERO);
        let mid = SimTime::ZERO + SimDuration::from_secs(200);
        db.register(vn(1), eid(1), r1, TTL, mid);
        let after_first_ttl = SimTime::ZERO + TTL + SimDuration::from_secs(10);
        assert!(db.lookup(vn(1), eid(1), after_first_ttl).is_some());
    }

    #[test]
    fn versions_strictly_increase() {
        let mut db = MappingDb::new();
        db.register(vn(1), eid(1), Rloc::for_router_index(1), TTL, SimTime::ZERO);
        let (_, a) = db.lookup(vn(1), eid(1), SimTime::ZERO).unwrap();
        db.register(vn(1), eid(2), Rloc::for_router_index(1), TTL, SimTime::ZERO);
        let (_, b) = db.lookup(vn(1), eid(2), SimTime::ZERO).unwrap();
        assert!(b.version > a.version);
    }

    #[test]
    fn withdraw_removes() {
        let mut db = MappingDb::new();
        db.register(vn(1), eid(1), Rloc::for_router_index(1), TTL, SimTime::ZERO);
        assert!(db.withdraw(vn(1), eid(1)).is_some());
        assert!(db.withdraw(vn(1), eid(1)).is_none());
        assert!(db.lookup(vn(1), eid(1), SimTime::ZERO).is_none());
    }

    #[test]
    fn len_is_maintained_not_recomputed() {
        let mut db = MappingDb::new();
        db.register(vn(1), eid(1), Rloc::for_router_index(1), TTL, SimTime::ZERO);
        db.register(vn(2), eid(1), Rloc::for_router_index(1), TTL, SimTime::ZERO);
        db.register(vn(1), eid(1), Rloc::for_router_index(2), TTL, SimTime::ZERO); // move
        assert_eq!(db.len(), 2);
        assert_eq!(db.len(), db.recount());
        db.withdraw(vn(1), eid(1));
        assert_eq!(db.len(), 1);
        assert_eq!(db.len(), db.recount());
        let later = SimTime::ZERO + TTL + SimDuration::from_secs(1);
        db.purge_expired(later);
        assert_eq!(db.len(), 0);
        assert_eq!(db.len(), db.recount());
    }

    #[test]
    fn all_three_families_coexist() {
        let mut db = MappingDb::new();
        let r = Rloc::for_router_index(3);
        db.register(vn(1), eid(1), r, TTL, SimTime::ZERO);
        db.register(
            vn(1),
            Eid::V6("2001:db8::1".parse::<std::net::Ipv6Addr>().unwrap()),
            r,
            TTL,
            SimTime::ZERO,
        );
        db.register(
            vn(1),
            Eid::Mac(sda_types::MacAddr::from_seed(1)),
            r,
            TTL,
            SimTime::ZERO,
        );
        assert_eq!(db.len(), 3);
        assert_eq!(db.live_count(vn(1), SimTime::ZERO), 3);
    }
}
