//! Horizontal map-server scaling (§4.1):
//!
//! > "the architecture scales horizontally and can deploy more routing
//! > servers. Then, we load balance across edge routers by grouping them
//! > and pointing each group to a different routing server for the route
//! > requests, and perform route updates on all servers."
//!
//! [`ShardedMapServer`] implements exactly that: requests route to one
//! shard by requester group; registers replicate to every shard.
//!
//! This is the *paper-faithful* deployment — and therefore the one whose
//! costs grow linearly with shard count (every register is applied N
//! times, every shard holds the whole world). It is kept as the
//! differential oracle for `sda-ctrl`'s `PartitionedMapServer`, which
//! partitions EID space so each register lands on exactly one shard.
//!
//! Invariant: register side effects (notifies, publishes) are
//! transmitted from the **transmit shard** only (the other replicas
//! apply the update silently, or every subscriber would see N copies),
//! so subscriptions MUST live on that same shard — a subscription pinned
//! anywhere else would silently receive nothing.

use sda_simnet::SimTime;
use sda_types::Rloc;
use sda_wire::lisp::Message;

use crate::map_server::{MapServer, MapServerStats, Outbox};

/// A group of map-servers acting as one logical routing server.
pub struct ShardedMapServer {
    shards: Vec<MapServer>,
}

impl ShardedMapServer {
    /// Creates `n` shards with locators from `rlocs` (one per shard).
    ///
    /// # Panics
    /// Panics if `rlocs` is empty.
    pub fn new(rlocs: Vec<Rloc>) -> Self {
        assert!(!rlocs.is_empty(), "need at least one shard");
        ShardedMapServer {
            shards: rlocs.into_iter().map(MapServer::new).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard serves requests from `requester` (stable hash of the
    /// edge's RLOC — the "grouping edge routers" rule).
    pub fn shard_for(&self, requester: Rloc) -> usize {
        let ip = u32::from(requester.addr());
        (ip.wrapping_mul(2_654_435_761) >> 16) as usize % self.shards.len()
    }

    /// The shard whose register side effects (notifies, publishes) are
    /// transmitted — the module-level invariant: subscriptions must be
    /// routed here and nowhere else, or subscribers would silently
    /// receive nothing (the other replicas apply updates mutely).
    fn transmit_shard(&self) -> usize {
        self.shards.len() - 1
    }

    /// Handles a message, applying the request/update routing rule.
    pub fn handle(&mut self, msg: Message, now: SimTime) -> Outbox {
        match &msg {
            // Updates fan to ALL shards so any shard can answer any EID.
            Message::MapRegister { .. } => {
                let (last, rest) = self
                    .shards
                    .split_last_mut()
                    .expect("constructor guarantees at least one shard");
                for shard in rest {
                    shard.handle(msg.clone(), now);
                }
                // The message moves into the transmit shard (no clone),
                // and only that shard's side effects (notify/publish)
                // are transmitted, or every subscriber would see N
                // copies.
                last.handle(msg, now)
            }
            Message::MapRequest { itr_rloc, .. } => {
                let idx = self.shard_for(*itr_rloc);
                self.shards[idx].handle(msg, now)
            }
            Message::Subscribe { .. } => {
                // Explicitly routed to the transmit shard (see the
                // invariant on `transmit_shard`): that is the only shard
                // that emits publishes for replicated registers.
                let idx = self.transmit_shard();
                self.shards[idx].handle(msg, now)
            }
            _ => Outbox::new(),
        }
    }

    /// Aggregated statistics across shards.
    pub fn stats(&self) -> MapServerStats {
        let mut total = MapServerStats::default();
        for s in &self.shards {
            let st = s.stats();
            total.replies += st.replies;
            total.negative_replies += st.negative_replies;
            total.registers += st.registers;
            total.moves += st.moves;
            total.publishes += st.publishes;
        }
        total
    }

    /// Per-shard request counts (for balance checks).
    pub fn request_distribution(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.stats().replies + s.stats().negative_replies)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sda_types::{Eid, VnId};
    use std::net::Ipv4Addr;

    fn vn() -> VnId {
        VnId::new(1).unwrap()
    }

    fn eid(n: u8) -> Eid {
        Eid::V4(Ipv4Addr::new(10, 0, 0, n))
    }

    fn sharded(n: u16) -> ShardedMapServer {
        ShardedMapServer::new((0..n).map(|i| Rloc::for_router_index(1000 + i)).collect())
    }

    fn register(e: Eid, edge: Rloc) -> Message {
        Message::MapRegister {
            nonce: 0,
            vn: vn(),
            eid: e,
            rloc: edge,
            ttl_secs: 300,
            want_notify: false,
        }
    }

    fn request(e: Eid, requester: Rloc) -> Message {
        Message::MapRequest {
            nonce: 1,
            smr: false,
            vn: vn(),
            eid: e,
            itr_rloc: requester,
        }
    }

    #[test]
    fn any_shard_answers_any_eid() {
        let mut s = sharded(4);
        let edge = Rloc::for_router_index(1);
        s.handle(register(eid(1), edge), SimTime::ZERO);
        // Ask from many different requesters (hitting different shards):
        // all must answer positively.
        for i in 0..16 {
            let requester = Rloc::for_router_index(i);
            let out = s.handle(request(eid(1), requester), SimTime::ZERO);
            assert_eq!(out.len(), 1);
            assert!(
                matches!(
                    out[0].1,
                    Message::MapReply {
                        negative: false,
                        ..
                    }
                ),
                "shard must know the EID"
            );
        }
    }

    #[test]
    fn requests_spread_across_shards() {
        let mut s = sharded(4);
        s.handle(register(eid(1), Rloc::for_router_index(1)), SimTime::ZERO);
        for i in 0..200 {
            let requester = Rloc::for_router_index(i);
            s.handle(request(eid(1), requester), SimTime::ZERO);
        }
        let dist = s.request_distribution();
        assert_eq!(dist.iter().sum::<u64>(), 200);
        for (i, count) in dist.iter().enumerate() {
            assert!(*count > 20, "shard {i} got only {count}/200 requests");
        }
    }

    #[test]
    fn same_requester_always_same_shard() {
        let s = sharded(3);
        let r = Rloc::for_router_index(42);
        let first = s.shard_for(r);
        for _ in 0..10 {
            assert_eq!(s.shard_for(r), first);
        }
    }

    #[test]
    fn move_notify_emitted_once_not_per_shard() {
        let mut s = sharded(4);
        let old_edge = Rloc::for_router_index(1);
        let new_edge = Rloc::for_router_index(2);
        s.handle(register(eid(1), old_edge), SimTime::ZERO);
        let out = s.handle(register(eid(1), new_edge), SimTime::ZERO);
        let notifies = out
            .iter()
            .filter(|(_, m)| matches!(m, Message::MapNotify { .. }))
            .count();
        assert_eq!(notifies, 1, "exactly one notify despite 4 shards");
    }

    /// The transmit-shard invariant: a subscriber must see every change
    /// exactly once, even though registers are applied on all 4 shards.
    /// (Subscriptions pinned to any non-transmit shard would receive
    /// nothing at all, since only the transmit shard's side effects are
    /// sent.)
    #[test]
    fn subscriber_sees_each_change_exactly_once() {
        let mut s = sharded(4);
        let border = Rloc::for_router_index(9);
        let out = s.handle(
            Message::Subscribe {
                nonce: 0,
                vn: vn(),
                subscriber: border,
            },
            SimTime::ZERO,
        );
        assert_eq!(out.len(), 1, "just the ack before any register");
        assert!(
            matches!(out[0], (to, Message::SubscribeAck { .. }) if to == border),
            "subscription acked to the border, not 4 times"
        );
        for i in 1..=5u8 {
            let out = s.handle(register(eid(i), Rloc::for_router_index(1)), SimTime::ZERO);
            let publishes: Vec<_> = out
                .iter()
                .filter(|(to, m)| *to == border && matches!(m, Message::Publish { .. }))
                .collect();
            assert_eq!(publishes.len(), 1, "one publish per change, not 4");
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        ShardedMapServer::new(vec![]);
    }
}
