//! The map-server (routing server) state machine.
//!
//! Speaks [`sda_wire::lisp::Message`] end to end: callers hand it parsed
//! control messages and it returns `(destination RLOC, message)` pairs to
//! transmit. All the SDA-specific behaviors live here:
//!
//! * **Move notification** (Fig. 5): a Map-Register from a new RLOC
//!   triggers a Map-Notify to the *previous* RLOC, telling the old edge
//!   to pull the new location and forward in-flight traffic.
//! * **Negative Map-Reply**: unknown EIDs answer `negative` with a short
//!   TTL; edges delete matching FIB entries (the building-B nighttime
//!   cache-cleaning effect of §4.2).
//! * **Pub/sub** (§3.3): subscribed border routers receive a Publish for
//!   every mapping change, plus a full snapshot on subscription.

use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, EidPrefix, Rloc, VnId};
use sda_wire::lisp::Message;

use crate::pubsub::SubscriberTable;
use crate::registry::{MappingDb, RegisterOutcome};

/// Control-CPU service time for a Map-Request (lookup). Independent of
/// table size — the Patricia-trie property Fig. 7a demonstrates.
pub const REQUEST_SERVICE: SimDuration = SimDuration::from_micros(250);

/// Control-CPU service time for a Map-Register (update). Slightly above
/// lookup (Fig. 7b sits marginally above 7a).
pub const UPDATE_SERVICE: SimDuration = SimDuration::from_micros(280);

/// TTL carried in positive Map-Replies (seconds). The edge map-cache
/// honours it; 48 h (together with idle decay) reflects the long
/// retention §4.2 observes on building-A edges: caches persist across
/// the 14 h workday gap but clear over the 62 h weekend gap.
pub const REPLY_TTL_SECS: u32 = 48 * 3600;

/// TTL of negative replies: misses must age out quickly.
pub const NEGATIVE_TTL_SECS: u32 = 60;

/// Statistics counters for the experiment harnesses.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct MapServerStats {
    /// Map-Requests answered positively.
    pub replies: u64,
    /// Map-Requests answered negatively.
    pub negative_replies: u64,
    /// Registers processed (new + refresh + move).
    pub registers: u64,
    /// Registers that were moves.
    pub moves: u64,
    /// Publishes emitted to subscribers.
    pub publishes: u64,
}

/// The routing server of Fig. 1.
pub struct MapServer {
    /// This server's own locator (sources of its messages).
    rloc: Rloc,
    db: MappingDb,
    subs: SubscriberTable,
    stats: MapServerStats,
    default_ttl: SimDuration,
}

/// Messages to transmit: `(destination RLOC, message)`.
pub type Outbox = Vec<(Rloc, Message)>;

impl MapServer {
    /// Creates a map-server reachable at `rloc`.
    pub fn new(rloc: Rloc) -> Self {
        MapServer {
            rloc,
            db: MappingDb::new(),
            subs: SubscriberTable::new(),
            stats: MapServerStats::default(),
            default_ttl: SimDuration::from_secs(u64::from(REPLY_TTL_SECS)),
        }
    }

    /// This server's locator.
    pub fn rloc(&self) -> Rloc {
        self.rloc
    }

    /// Read access to the mapping database.
    pub fn db(&self) -> &MappingDb {
        &self.db
    }

    /// Re-lays the mapping database's trie arenas in DFS preorder (see
    /// [`MappingDb::compact`]). Call once a registration storm (network
    /// bring-up, bench preload) settles so Fig. 7 request lookups walk
    /// nearly-sequential memory.
    pub fn compact(&mut self) {
        self.db.compact();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MapServerStats {
        self.stats
    }

    /// The appropriate control-CPU service time for `msg`.
    pub fn service_time(msg: &Message) -> SimDuration {
        match msg {
            Message::MapRegister { .. } => UPDATE_SERVICE,
            _ => REQUEST_SERVICE,
        }
    }

    /// Handles one control message, returning messages to transmit.
    pub fn handle(&mut self, msg: Message, now: SimTime) -> Outbox {
        match msg {
            Message::MapRequest {
                nonce,
                smr,
                vn,
                eid,
                itr_rloc,
            } => {
                // An SMR addressed to the server is meaningless; ignore.
                if smr {
                    return Outbox::new();
                }
                self.answer_request(nonce, vn, eid, itr_rloc, now)
            }
            Message::MapRegister {
                nonce,
                vn,
                eid,
                rloc,
                ttl_secs,
                want_notify,
            } => self.process_register(nonce, vn, eid, rloc, ttl_secs, want_notify, now),
            Message::Subscribe {
                nonce,
                vn,
                subscriber,
            } => self.process_subscribe(nonce, vn, subscriber),
            // Replies/notifies/publishes/acks/busy-signals are never
            // addressed to a server.
            Message::MapReply { .. }
            | Message::MapNotify { .. }
            | Message::Publish { .. }
            | Message::SubscribeAck { .. }
            | Message::ServerBusy { .. } => Outbox::new(),
        }
    }

    fn answer_request(
        &mut self,
        nonce: u64,
        vn: VnId,
        eid: Eid,
        itr_rloc: Rloc,
        now: SimTime,
    ) -> Outbox {
        match self.db.lookup(vn, eid, now) {
            Some((prefix, rec)) => {
                self.stats.replies += 1;
                vec![(
                    itr_rloc,
                    Message::MapReply {
                        nonce,
                        vn,
                        prefix,
                        rloc: Some(rec.rloc),
                        negative: false,
                        ttl_secs: REPLY_TTL_SECS,
                    },
                )]
            }
            None => {
                self.stats.negative_replies += 1;
                vec![(
                    itr_rloc,
                    Message::MapReply {
                        nonce,
                        vn,
                        prefix: EidPrefix::host(eid),
                        rloc: None,
                        negative: true,
                        ttl_secs: NEGATIVE_TTL_SECS,
                    },
                )]
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn process_register(
        &mut self,
        nonce: u64,
        vn: VnId,
        eid: Eid,
        rloc: Rloc,
        ttl_secs: u32,
        want_notify: bool,
        now: SimTime,
    ) -> Outbox {
        let ttl = if ttl_secs == 0 {
            self.default_ttl
        } else {
            SimDuration::from_secs(u64::from(ttl_secs))
        };
        self.stats.registers += 1;
        let outcome = self.db.register(vn, eid, rloc, ttl, now);
        let mut out = Outbox::new();

        if let RegisterOutcome::Moved { previous } = outcome {
            self.stats.moves += 1;
            // Fig. 5 step 2: tell the previous edge where the endpoint
            // went so it can forward in-flight traffic and refresh.
            out.push((
                previous,
                Message::MapNotify {
                    nonce: 0,
                    vn,
                    eid,
                    new_rloc: rloc,
                },
            ));
        }

        if want_notify {
            // Registration ack.
            out.push((
                rloc,
                Message::MapNotify {
                    nonce,
                    vn,
                    eid,
                    new_rloc: rloc,
                },
            ));
        }

        // Pub/sub: push the change to subscribed borders (skip refreshes —
        // nothing changed for the data plane).
        if !matches!(outcome, RegisterOutcome::Refreshed) {
            let subscribers: Vec<Rloc> = self.subs.subscribers(vn).to_vec();
            for sub in subscribers {
                let seq = self.subs.next_seq(vn);
                self.stats.publishes += 1;
                out.push((
                    sub,
                    Message::Publish {
                        nonce: seq,
                        vn,
                        prefix: EidPrefix::host(eid),
                        rloc,
                        withdraw: false,
                    },
                ));
            }
        }
        out
    }

    fn process_subscribe(&mut self, nonce: u64, vn: VnId, subscriber: Rloc) -> Outbox {
        self.subs.subscribe(vn, subscriber);
        // Ack first: the subscriber resets its view of the VN on receipt,
        // then the snapshot publishes that follow rebuild it. Re-subscribe
        // is idempotent, so retransmitted Subscribes are safe.
        let mut out = Outbox::new();
        out.push((subscriber, Message::SubscribeAck { nonce, vn }));
        // Full snapshot so the border starts synchronized.
        let snapshot: Vec<(VnId, EidPrefix, Rloc)> = self
            .db
            .iter()
            .filter(|(v, _, _)| *v == vn)
            .map(|(v, p, r)| (v, p, r.rloc))
            .collect();
        for (v, prefix, rloc) in snapshot {
            let seq = self.subs.next_seq(v);
            self.stats.publishes += 1;
            out.push((
                subscriber,
                Message::Publish {
                    nonce: seq,
                    vn: v,
                    prefix,
                    rloc,
                    withdraw: false,
                },
            ));
        }
        out
    }

    /// Expires registrations whose TTL lapsed (the registering edge
    /// stopped refreshing — endpoint left the network), withdrawing each
    /// toward subscribers. This is what makes the border router's table
    /// "follow closely the presence of authenticated users" (§4.2).
    pub fn expire(&mut self, now: SimTime) -> Outbox {
        // Single traversal: prune expired host registrations in place and
        // collect what was removed for the withdraw publishes (the seed
        // collected victims, then re-descended once per victim to remove).
        let mut dead: Vec<(VnId, Eid, Rloc)> = Vec::new();
        self.db.retain(|vn, prefix, rec| {
            if !rec.expired(now) {
                return true;
            }
            match host_eid_of(prefix) {
                Some(eid) => {
                    dead.push((vn, eid, rec.rloc));
                    false
                }
                // Non-host registrations are out of scope for expiry
                // withdrawal (matches the previous behavior).
                None => true,
            }
        });
        let mut out = Outbox::new();
        for (vn, eid, old_rloc) in dead {
            self.publish_withdraw(vn, eid, old_rloc, &mut out);
        }
        out
    }

    /// Streams a withdrawal of `eid` (last at `old_rloc`) to `vn`'s
    /// subscribers — the shared tail of [`MapServer::withdraw`] and
    /// [`MapServer::expire`].
    fn publish_withdraw(&mut self, vn: VnId, eid: Eid, old_rloc: Rloc, out: &mut Outbox) {
        let subscribers: Vec<Rloc> = self.subs.subscribers(vn).to_vec();
        for sub in subscribers {
            let seq = self.subs.next_seq(vn);
            self.stats.publishes += 1;
            out.push((
                sub,
                Message::Publish {
                    nonce: seq,
                    vn,
                    prefix: EidPrefix::host(eid),
                    rloc: old_rloc,
                    withdraw: true,
                },
            ));
        }
    }

    /// Explicit withdraw (endpoint offboarded or edge died); publishes
    /// the removal to subscribers.
    pub fn withdraw(&mut self, vn: VnId, eid: Eid) -> Outbox {
        let Some(old) = self.db.withdraw(vn, eid) else {
            return Outbox::new();
        };
        let mut out = Outbox::new();
        self.publish_withdraw(vn, eid, old.rloc, &mut out);
        out
    }
}

/// Host EID of a full-length prefix.
fn host_eid_of(prefix: &EidPrefix) -> Option<Eid> {
    match prefix {
        EidPrefix::V4(p) if p.len() == 32 => Some(Eid::V4(p.addr())),
        EidPrefix::V6(p) if p.len() == 128 => Some(Eid::V6(p.addr())),
        EidPrefix::Mac(p) if p.len() == 48 => Some(Eid::Mac(p.addr())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    fn eid(n: u8) -> Eid {
        Eid::V4(Ipv4Addr::new(10, 0, 0, n))
    }

    fn server() -> MapServer {
        MapServer::new(Rloc::for_router_index(0))
    }

    fn register(vn_: VnId, eid_: Eid, rloc: Rloc) -> Message {
        Message::MapRegister {
            nonce: 1,
            vn: vn_,
            eid: eid_,
            rloc,
            ttl_secs: 300,
            want_notify: false,
        }
    }

    #[test]
    fn request_for_registered_eid_gets_positive_reply() {
        let mut s = server();
        let edge = Rloc::for_router_index(1);
        s.handle(register(vn(1), eid(1), edge), SimTime::ZERO);
        let out = s.handle(
            Message::MapRequest {
                nonce: 7,
                smr: false,
                vn: vn(1),
                eid: eid(1),
                itr_rloc: Rloc::for_router_index(2),
            },
            SimTime::ZERO,
        );
        assert_eq!(out.len(), 1);
        let (to, msg) = &out[0];
        assert_eq!(*to, Rloc::for_router_index(2));
        match msg {
            Message::MapReply {
                nonce,
                rloc,
                negative,
                ttl_secs,
                ..
            } => {
                assert_eq!(*nonce, 7);
                assert_eq!(*rloc, Some(edge));
                assert!(!negative);
                assert_eq!(*ttl_secs, REPLY_TTL_SECS);
            }
            other => panic!("expected MapReply, got {other:?}"),
        }
    }

    #[test]
    fn request_for_unknown_eid_gets_negative_reply() {
        let mut s = server();
        let out = s.handle(
            Message::MapRequest {
                nonce: 9,
                smr: false,
                vn: vn(1),
                eid: eid(9),
                itr_rloc: Rloc::for_router_index(2),
            },
            SimTime::ZERO,
        );
        match &out[0].1 {
            Message::MapReply {
                negative,
                rloc,
                ttl_secs,
                ..
            } => {
                assert!(*negative);
                assert_eq!(*rloc, None);
                assert_eq!(*ttl_secs, NEGATIVE_TTL_SECS);
            }
            other => panic!("expected negative MapReply, got {other:?}"),
        }
        assert_eq!(s.stats().negative_replies, 1);
    }

    #[test]
    fn move_notifies_previous_edge() {
        let mut s = server();
        let old_edge = Rloc::for_router_index(1);
        let new_edge = Rloc::for_router_index(2);
        s.handle(register(vn(1), eid(1), old_edge), SimTime::ZERO);
        let out = s.handle(register(vn(1), eid(1), new_edge), SimTime::ZERO);
        assert_eq!(out.len(), 1);
        let (to, msg) = &out[0];
        assert_eq!(*to, old_edge, "notify goes to the previous edge");
        match msg {
            Message::MapNotify {
                eid: e, new_rloc, ..
            } => {
                assert_eq!(*e, eid(1));
                assert_eq!(*new_rloc, new_edge);
            }
            other => panic!("expected MapNotify, got {other:?}"),
        }
        assert_eq!(s.stats().moves, 1);
    }

    #[test]
    fn want_notify_acks_registrant() {
        let mut s = server();
        let edge = Rloc::for_router_index(1);
        let out = s.handle(
            Message::MapRegister {
                nonce: 55,
                vn: vn(1),
                eid: eid(1),
                rloc: edge,
                ttl_secs: 300,
                want_notify: true,
            },
            SimTime::ZERO,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, edge);
        assert!(matches!(out[0].1, Message::MapNotify { nonce: 55, .. }));
    }

    #[test]
    fn subscriber_gets_snapshot_then_stream() {
        let mut s = server();
        let edge = Rloc::for_router_index(1);
        let border = Rloc::for_router_index(9);
        s.handle(register(vn(1), eid(1), edge), SimTime::ZERO);
        s.handle(register(vn(1), eid(2), edge), SimTime::ZERO);

        // Subscribe: ack followed by a snapshot of 2 mappings.
        let out = s.handle(
            Message::Subscribe {
                nonce: 5,
                vn: vn(1),
                subscriber: border,
            },
            SimTime::ZERO,
        );
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|(to, _)| *to == border));
        assert!(matches!(out[0].1, Message::SubscribeAck { nonce: 5, .. }));
        assert!(out[1..].iter().all(|(_, m)| matches!(
            m,
            Message::Publish {
                withdraw: false,
                ..
            }
        )));

        // New registration streams one publish.
        let out = s.handle(register(vn(1), eid(3), edge), SimTime::ZERO);
        let publishes: Vec<_> = out
            .iter()
            .filter(|(_, m)| matches!(m, Message::Publish { .. }))
            .collect();
        assert_eq!(publishes.len(), 1);

        // Refresh does NOT publish.
        let out = s.handle(register(vn(1), eid(3), edge), SimTime::ZERO);
        assert!(out.is_empty(), "refresh must not publish: {out:?}");
    }

    #[test]
    fn publish_sequences_increase() {
        let mut s = server();
        let border = Rloc::for_router_index(9);
        s.handle(
            Message::Subscribe {
                nonce: 0,
                vn: vn(1),
                subscriber: border,
            },
            SimTime::ZERO,
        );
        let mut last = 0;
        for i in 1..=5u8 {
            let out = s.handle(
                register(vn(1), eid(i), Rloc::for_router_index(1)),
                SimTime::ZERO,
            );
            for (_, m) in out {
                if let Message::Publish { nonce, .. } = m {
                    assert!(nonce > last);
                    last = nonce;
                }
            }
        }
    }

    /// Regression: with the old *global* sequence counter, publishes to
    /// VN A advanced the numbers VN B's subscriber saw, so every
    /// foreign-VN publish looked like a gap. Each VN's stream must be
    /// contiguous on its own.
    #[test]
    fn per_vn_publish_streams_are_contiguous() {
        let mut s = server();
        let border_a = Rloc::for_router_index(8);
        let border_b = Rloc::for_router_index(9);
        for (v, b) in [(vn(1), border_a), (vn(2), border_b)] {
            s.handle(
                Message::Subscribe {
                    nonce: 0,
                    vn: v,
                    subscriber: b,
                },
                SimTime::ZERO,
            );
        }
        // Interleave changes across the two VNs.
        let mut out = Outbox::new();
        for i in 1..=4u8 {
            out.extend(s.handle(
                register(vn(1), eid(i), Rloc::for_router_index(1)),
                SimTime::ZERO,
            ));
            out.extend(s.handle(
                register(vn(2), eid(i), Rloc::for_router_index(1)),
                SimTime::ZERO,
            ));
        }
        for (border, v) in [(border_a, vn(1)), (border_b, vn(2))] {
            let seqs: Vec<u64> = out
                .iter()
                .filter(|(to, _)| *to == border)
                .map(|(_, m)| match m {
                    Message::Publish { nonce, vn, .. } => {
                        assert_eq!(*vn, v);
                        *nonce
                    }
                    other => panic!("expected Publish, got {other:?}"),
                })
                .collect();
            assert_eq!(
                seqs,
                vec![1, 2, 3, 4],
                "{v:?}'s stream must be gap-free despite interleaving"
            );
        }
    }

    #[test]
    fn withdraw_publishes_removal() {
        let mut s = server();
        let border = Rloc::for_router_index(9);
        s.handle(
            register(vn(1), eid(1), Rloc::for_router_index(1)),
            SimTime::ZERO,
        );
        s.handle(
            Message::Subscribe {
                nonce: 0,
                vn: vn(1),
                subscriber: border,
            },
            SimTime::ZERO,
        );
        let out = s.withdraw(vn(1), eid(1));
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, Message::Publish { withdraw: true, .. }));
        // Unknown withdraw is silent.
        assert!(s.withdraw(vn(1), eid(1)).is_empty());
    }

    #[test]
    fn service_times_are_table_size_independent_constants() {
        let req = Message::MapRequest {
            nonce: 0,
            smr: false,
            vn: vn(1),
            eid: eid(1),
            itr_rloc: Rloc::for_router_index(1),
        };
        let reg = register(vn(1), eid(1), Rloc::for_router_index(1));
        assert_eq!(MapServer::service_time(&req), REQUEST_SERVICE);
        assert_eq!(MapServer::service_time(&reg), UPDATE_SERVICE);
        assert!(UPDATE_SERVICE > REQUEST_SERVICE);
    }

    #[test]
    fn expire_withdraws_and_publishes() {
        let mut s = server();
        let border = Rloc::for_router_index(9);
        let edge = Rloc::for_router_index(1);
        s.handle(
            Message::MapRegister {
                nonce: 0,
                vn: vn(1),
                eid: eid(1),
                rloc: edge,
                ttl_secs: 60,
                want_notify: false,
            },
            SimTime::ZERO,
        );
        s.handle(
            Message::Subscribe {
                nonce: 0,
                vn: vn(1),
                subscriber: border,
            },
            SimTime::ZERO,
        );
        // Before expiry: nothing.
        assert!(s
            .expire(SimTime::ZERO + SimDuration::from_secs(30))
            .is_empty());
        // After expiry: withdraw published, DB emptied.
        let out = s.expire(SimTime::ZERO + SimDuration::from_secs(61));
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, Message::Publish { withdraw: true, .. }));
        assert!(s.db().is_empty());
    }

    #[test]
    fn smr_addressed_to_server_ignored() {
        let mut s = server();
        let out = s.handle(
            Message::MapRequest {
                nonce: 0,
                smr: true,
                vn: vn(1),
                eid: eid(1),
                itr_rloc: Rloc::for_router_index(1),
            },
            SimTime::ZERO,
        );
        assert!(out.is_empty());
    }
}
