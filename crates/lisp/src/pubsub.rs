//! Pub/sub subscriptions (draft-ietf-lisp-pubsub, §3.3 border sync).
//!
//! Border routers subscribe per VN; every mapping change is pushed to
//! them with a monotonic **per-VN** sequence number so a subscriber can
//! detect a gap in its own stream (and re-subscribe for a full
//! snapshot). The sequence must be per VN: with a single global counter
//! a publish to VN A advances the number a VN-B subscriber sees next,
//! so every foreign-VN publish looks like a gap to everyone else.

use std::collections::BTreeMap;

use sda_types::{Rloc, VnId};

/// Who is subscribed to which VN's mapping stream.
#[derive(Default, Debug)]
pub struct SubscriberTable {
    /// vn → subscriber RLOCs (sorted, deduped).
    by_vn: BTreeMap<VnId, Vec<Rloc>>,
    /// vn → last allocated publish sequence number.
    seqs: BTreeMap<VnId, u64>,
}

impl SubscriberTable {
    /// Empty table.
    pub fn new() -> Self {
        SubscriberTable::default()
    }

    /// Adds `subscriber` to `vn`'s stream. Idempotent.
    pub fn subscribe(&mut self, vn: VnId, subscriber: Rloc) {
        let subs = self.by_vn.entry(vn).or_default();
        if let Err(pos) = subs.binary_search(&subscriber) {
            subs.insert(pos, subscriber);
        }
    }

    /// Removes `subscriber` from `vn`'s stream.
    pub fn unsubscribe(&mut self, vn: VnId, subscriber: Rloc) {
        if let Some(subs) = self.by_vn.get_mut(&vn) {
            if let Ok(pos) = subs.binary_search(&subscriber) {
                subs.remove(pos);
            }
        }
    }

    /// The subscribers of `vn`.
    pub fn subscribers(&self, vn: VnId) -> &[Rloc] {
        self.by_vn.get(&vn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Allocates the next publish sequence number of `vn`'s stream.
    pub fn next_seq(&mut self, vn: VnId) -> u64 {
        let seq = self.seqs.entry(vn).or_insert(0);
        *seq += 1;
        *seq
    }

    /// The last sequence number allocated for `vn` (0 before any
    /// publish) — the stream's current watermark.
    pub fn current_seq(&self, vn: VnId) -> u64 {
        self.seqs.get(&vn).copied().unwrap_or(0)
    }

    /// Total subscriptions across VNs.
    pub fn len(&self) -> usize {
        self.by_vn.values().map(Vec::len).sum()
    }

    /// True when nobody is subscribed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    #[test]
    fn subscribe_is_idempotent_and_sorted() {
        let mut t = SubscriberTable::new();
        let r1 = Rloc::for_router_index(1);
        let r2 = Rloc::for_router_index(2);
        t.subscribe(vn(1), r2);
        t.subscribe(vn(1), r1);
        t.subscribe(vn(1), r2);
        assert_eq!(t.subscribers(vn(1)), &[r1, r2]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unsubscribe() {
        let mut t = SubscriberTable::new();
        let r = Rloc::for_router_index(1);
        t.subscribe(vn(1), r);
        t.unsubscribe(vn(1), r);
        assert!(t.subscribers(vn(1)).is_empty());
        t.unsubscribe(vn(2), r); // no-op on unknown vn
    }

    #[test]
    fn vn_scoping() {
        let mut t = SubscriberTable::new();
        let r = Rloc::for_router_index(1);
        t.subscribe(vn(1), r);
        assert!(t.subscribers(vn(2)).is_empty());
    }

    #[test]
    fn sequence_monotone() {
        let mut t = SubscriberTable::new();
        let a = t.next_seq(vn(1));
        let b = t.next_seq(vn(1));
        assert!(b > a);
    }

    /// Regression: a publish to VN A must not advance VN B's stream —
    /// with the old global counter, every foreign-VN publish looked
    /// like a gap to all other subscribers.
    #[test]
    fn sequences_are_per_vn() {
        let mut t = SubscriberTable::new();
        assert_eq!(t.next_seq(vn(1)), 1);
        assert_eq!(t.next_seq(vn(1)), 2);
        assert_eq!(t.next_seq(vn(2)), 1, "vn 2 starts its own stream");
        assert_eq!(t.next_seq(vn(1)), 3, "vn 1 unaffected by vn 2");
        assert_eq!(t.current_seq(vn(1)), 3);
        assert_eq!(t.current_seq(vn(2)), 1);
        assert_eq!(t.current_seq(vn(3)), 0, "untouched stream is at 0");
    }
}
