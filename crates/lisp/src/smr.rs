//! Solicit-Map-Request bookkeeping (Fig. 6).
//!
//! When a *stale* edge keeps receiving traffic for a moved endpoint, it
//! answers each source with an SMR. Sources may send many packets before
//! their re-resolution completes; re-SMR'ing every packet would melt the
//! control plane, so senders are deduplicated within a window — the
//! paper's observation that "these control plane messages will be
//! staggered over time" stays true while the *rate* stays bounded.

use std::collections::HashMap;

use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, Rloc, VnId};

/// Deduplicates SMR transmissions per `(vn, eid, requester)` within a
/// hold-down window.
pub struct SmrTracker {
    window: SimDuration,
    last_sent: HashMap<(VnId, Eid, Rloc), SimTime>,
    sent: u64,
    suppressed: u64,
}

impl SmrTracker {
    /// Creates a tracker with the given hold-down window.
    pub fn new(window: SimDuration) -> Self {
        SmrTracker {
            window,
            last_sent: HashMap::new(),
            sent: 0,
            suppressed: 0,
        }
    }

    /// Should an SMR be sent to `source` about `(vn, eid)` now?
    /// Records the transmission when answering `true`.
    pub fn should_send(&mut self, vn: VnId, eid: Eid, source: Rloc, now: SimTime) -> bool {
        let key = (vn, eid, source);
        match self.last_sent.get(&key) {
            Some(&t) if now.saturating_since(t) < self.window => {
                self.suppressed += 1;
                false
            }
            _ => {
                self.last_sent.insert(key, now);
                self.sent += 1;
                true
            }
        }
    }

    /// Clears state for an EID once its move has been re-resolved.
    pub fn forget_eid(&mut self, vn: VnId, eid: Eid) {
        self.last_sent
            .retain(|(v, e, _), _| !(*v == vn && *e == eid));
    }

    /// (sent, suppressed) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.sent, self.suppressed)
    }

    /// Drops records older than the window (housekeeping).
    pub fn gc(&mut self, now: SimTime) {
        let window = self.window;
        self.last_sent
            .retain(|_, t| now.saturating_since(*t) < window);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    fn eid(n: u8) -> Eid {
        Eid::V4(Ipv4Addr::new(10, 0, 0, n))
    }

    const WINDOW: SimDuration = SimDuration::from_secs(5);

    #[test]
    fn dedup_within_window() {
        let mut t = SmrTracker::new(WINDOW);
        let src = Rloc::for_router_index(1);
        assert!(t.should_send(vn(1), eid(1), src, SimTime::ZERO));
        assert!(!t.should_send(
            vn(1),
            eid(1),
            src,
            SimTime::ZERO + SimDuration::from_secs(1)
        ));
        assert!(t.should_send(vn(1), eid(1), src, SimTime::ZERO + WINDOW));
        assert_eq!(t.stats(), (2, 1));
    }

    #[test]
    fn distinct_sources_tracked_independently() {
        let mut t = SmrTracker::new(WINDOW);
        assert!(t.should_send(vn(1), eid(1), Rloc::for_router_index(1), SimTime::ZERO));
        assert!(t.should_send(vn(1), eid(1), Rloc::for_router_index(2), SimTime::ZERO));
    }

    #[test]
    fn forget_eid_resets() {
        let mut t = SmrTracker::new(WINDOW);
        let src = Rloc::for_router_index(1);
        assert!(t.should_send(vn(1), eid(1), src, SimTime::ZERO));
        t.forget_eid(vn(1), eid(1));
        assert!(t.should_send(vn(1), eid(1), src, SimTime::ZERO));
    }

    #[test]
    fn gc_prunes_old_records() {
        let mut t = SmrTracker::new(WINDOW);
        let src = Rloc::for_router_index(1);
        t.should_send(vn(1), eid(1), src, SimTime::ZERO);
        t.gc(SimTime::ZERO + WINDOW + SimDuration::from_secs(1));
        assert!(t.last_sent.is_empty());
    }
}
