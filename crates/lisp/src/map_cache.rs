//! The edge router's map-cache: the on-demand overlay FIB.
//!
//! This is the structure whose size Fig. 9 plots. Entries arrive from
//! Map-Replies and leave through four doors, each tied to a paper
//! behavior:
//!
//! 1. **TTL expiry** — replies carry a TTL; expired entries are purged.
//! 2. **Negative replies** — a resolution that fails *deletes* the entry
//!    (§4.2: nighttime traffic toward departed endpoints cleans edge
//!    caches in building B).
//! 3. **SMR invalidation** — a Solicit-Map-Request marks the entry stale;
//!    the edge re-resolves on next use (Fig. 6).
//! 4. **Underlay events** — when a peer RLOC becomes unreachable, every
//!    entry pointing at it is dropped and traffic falls back to the
//!    border default route (§5.1).

use std::collections::BTreeMap;

use sda_simnet::{SimDuration, SimTime};
use sda_trie::EidTrie;
use sda_types::{Eid, EidPrefix, Rloc, VnId};

/// One cached mapping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheEntry {
    /// Locator the prefix resolves to.
    pub rloc: Rloc,
    /// Absolute expiry instant.
    pub expires_at: SimTime,
    /// Last time a lookup hit this entry (idle-decay input).
    pub last_used: SimTime,
    /// Entry marked stale by an SMR; next lookup must re-resolve.
    pub stale: bool,
}

/// Result of a cache lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheOutcome {
    /// Fresh mapping: encapsulate toward this RLOC.
    Hit(Rloc),
    /// No entry (or expired): send a Map-Request, meanwhile use the
    /// default route to the border (§3.2.2).
    Miss,
    /// Entry exists but was SMR'd: usable for forwarding *now*, but a
    /// re-resolution must be triggered.
    Stale(Rloc),
}

/// The per-VN overlay FIB of one edge router.
#[derive(Default)]
pub struct MapCache {
    vns: BTreeMap<VnId, EidTrie<CacheEntry>>,
    /// Maintained entry count, so [`MapCache::len`] is O(1) instead of a
    /// sum over every per-VN trie. Invariant: always equals
    /// [`MapCache::recount`] (checked by the property tests).
    total: usize,
    /// Scratch for [`MapCache::lookup_batch`]: `(batch index, prefix)`
    /// of entries that expired mid-batch, removed (and their EIDs
    /// re-resolved) after the trie traversal ends. Capacity is
    /// retained, so batches stop allocating once warmed up.
    expired_scratch: Vec<(usize, EidPrefix)>,
}

impl MapCache {
    /// Empty cache.
    pub fn new() -> Self {
        MapCache::default()
    }

    /// Installs a mapping from a positive Map-Reply.
    pub fn install(
        &mut self,
        vn: VnId,
        prefix: EidPrefix,
        rloc: Rloc,
        ttl: SimDuration,
        now: SimTime,
    ) {
        let prev = self.vns.entry(vn).or_default().insert(
            prefix,
            CacheEntry {
                rloc,
                expires_at: now + ttl,
                last_used: now,
                stale: false,
            },
        );
        if prev.is_none() {
            self.total += 1;
        }
    }

    /// Applies a negative Map-Reply: the covered entry is *deleted*.
    /// Returns true if something was removed.
    pub fn apply_negative(&mut self, vn: VnId, prefix: EidPrefix) -> bool {
        let removed = self
            .vns
            .get_mut(&vn)
            .map(|t| t.remove(&prefix).is_some())
            .unwrap_or(false);
        if removed {
            self.total -= 1;
        }
        removed
    }

    /// Looks up `eid`, refreshing `last_used` on a hit.
    ///
    /// Hot path: one trie descent, `last_used`/`stale` read and written
    /// through the in-place mutable match — zero heap allocations (the
    /// seed implementation did a full remove + insert round trip here).
    pub fn lookup(&mut self, vn: VnId, eid: Eid, now: SimTime) -> CacheOutcome {
        let Some(trie) = self.vns.get_mut(&vn) else {
            return CacheOutcome::Miss;
        };
        let expired_prefix = match trie.lookup_mut(&eid) {
            None => return CacheOutcome::Miss,
            Some((prefix, entry)) => {
                if now < entry.expires_at {
                    entry.last_used = now;
                    return if entry.stale {
                        CacheOutcome::Stale(entry.rloc)
                    } else {
                        CacheOutcome::Hit(entry.rloc)
                    };
                }
                // Expired: fall through to remove once the borrow ends.
                prefix
            }
        };
        trie.remove(&expired_prefix);
        self.total -= 1;
        CacheOutcome::Miss
    }

    /// Batched lookup: resolves `vn`'s trie once, then runs every EID of
    /// the burst through it via [`EidTrie::lookup_mut_each`], appending
    /// one [`CacheOutcome`] per EID to `out` (which is cleared first).
    ///
    /// This is the data plane's batch entry point: the per-VN map access
    /// and the trie root stay hot for the whole run instead of being
    /// re-resolved per packet. Semantics match [`MapCache::lookup`]
    /// exactly — `last_used` refreshes in place, expired entries answer
    /// `Miss` and are removed. Steady state allocates nothing once `out`
    /// and the internal expiry scratch have warmed up.
    pub fn lookup_batch(
        &mut self,
        vn: VnId,
        eids: &[Eid],
        now: SimTime,
        out: &mut Vec<CacheOutcome>,
    ) {
        out.clear();
        let MapCache {
            vns,
            total,
            expired_scratch,
        } = self;
        let Some(trie) = vns.get_mut(&vn) else {
            out.extend(eids.iter().map(|_| CacheOutcome::Miss));
            return;
        };
        expired_scratch.clear();
        trie.lookup_mut_each(eids, |i, res| {
            out.push(match res {
                None => CacheOutcome::Miss,
                Some((len, entry)) => {
                    if now < entry.expires_at {
                        entry.last_used = now;
                        if entry.stale {
                            CacheOutcome::Stale(entry.rloc)
                        } else {
                            CacheOutcome::Hit(entry.rloc)
                        }
                    } else {
                        // Cold path: only expiry pays for the prefix
                        // reconstruction the removal below needs.
                        expired_scratch.push((i, sda_trie::covering_prefix(&eids[i], len)));
                        CacheOutcome::Miss
                    }
                }
            });
        });
        // Cold path: replay the expiries in batch order so the results
        // match what sequential `lookup` calls would have produced. The
        // first EID to hit an expired entry removes it and keeps its
        // Miss; EIDs after it re-resolve, because the purge may have
        // uncovered a shorter live prefix (an expired host route must
        // not shadow a live subnet for the rest of the batch). The
        // re-resolution loops since the next-longest match can itself
        // be expired.
        for &(i, prefix) in expired_scratch.iter() {
            if trie.remove(&prefix).is_some() {
                *total -= 1;
                continue; // out[i] stays Miss, as in sequential lookup.
            }
            out[i] = loop {
                match trie.lookup_mut(&eids[i]) {
                    None => break CacheOutcome::Miss,
                    Some((p, entry)) => {
                        if now < entry.expires_at {
                            entry.last_used = now;
                            break if entry.stale {
                                CacheOutcome::Stale(entry.rloc)
                            } else {
                                CacheOutcome::Hit(entry.rloc)
                            };
                        }
                        trie.remove(&p);
                        *total -= 1;
                    }
                }
            };
        }
        expired_scratch.clear();
    }

    /// Re-lays every per-VN trie arena in DFS preorder (see
    /// [`sda_trie::PatriciaTrie::compact`]). Call once a bulk
    /// population settles (the dataplane `Switch` exposes it as
    /// `compact_tables`); steady-state churn compacts opportunistically
    /// inside the tries themselves.
    pub fn compact(&mut self) {
        sda_trie::compact_each(self.vns.values_mut());
    }

    /// Aggregated trie-arena diagnostics across all VNs.
    pub fn mem_stats(&self) -> sda_trie::MemStats {
        sda_trie::merged_mem_stats(self.vns.values())
    }

    /// Marks the entry covering `eid` stale (SMR received).
    /// Returns the current RLOC if an entry existed.
    pub fn mark_stale(&mut self, vn: VnId, eid: Eid) -> Option<Rloc> {
        let (_, entry) = self.vns.get_mut(&vn)?.lookup_mut(&eid)?;
        entry.stale = true;
        Some(entry.rloc)
    }

    /// Replaces the mapping for `eid` (Map-Notify / refreshed Map-Reply
    /// after SMR).
    pub fn update_rloc(&mut self, vn: VnId, eid: Eid, rloc: Rloc, ttl: SimDuration, now: SimTime) {
        self.install(vn, EidPrefix::host(eid), rloc, ttl, now);
    }

    /// Drops every entry pointing at `rloc` (underlay declared it down).
    /// Returns how many entries were removed — a single traversal per VN
    /// via [`EidTrie::retain`], not a collect-then-remove-each loop.
    pub fn purge_rloc(&mut self, rloc: Rloc) -> usize {
        let mut removed = 0;
        for trie in self.vns.values_mut() {
            removed += trie.retain(|_, e| e.rloc != rloc);
        }
        self.total -= removed;
        removed
    }

    /// Drops entries expired at `now` or idle longer than `idle_timeout`.
    /// Returns how many were evicted, in a single traversal per VN. This
    /// is the slow decay §4.2 observes: "edge routers cache routes learned
    /// on demand and may retain them during longer periods".
    pub fn evict(&mut self, now: SimTime, idle_timeout: SimDuration) -> usize {
        let mut removed = 0;
        for trie in self.vns.values_mut() {
            removed += trie.retain(|_, e| {
                now < e.expires_at && now.saturating_since(e.last_used) < idle_timeout
            });
        }
        self.total -= removed;
        removed
    }

    /// Current entry count — the Fig. 9 "FIB entries" metric. O(1): the
    /// count is maintained across install/remove/evict, not recomputed.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Recomputes the entry count from the tries (O(entries)). Exists so
    /// tests can assert the maintained counter never drifts; production
    /// callers should use [`MapCache::len`].
    pub fn recount(&self) -> usize {
        self.vns.values().map(EidTrie::len).sum()
    }

    /// Entries of one address family (the paper's Fig. 9 counts IPv4
    /// overlay-to-underlay mappings only).
    pub fn len_of(&self, kind: sda_types::EidKind) -> usize {
        self.vns.values().map(|t| t.len_of(kind)).sum()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears everything (edge reboot, §5.2: "it will start with an
    /// empty FIB for the overlay entries").
    pub fn clear(&mut self) {
        self.vns.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    fn eid(n: u8) -> Eid {
        Eid::V4(Ipv4Addr::new(10, 0, 0, n))
    }

    const TTL: SimDuration = SimDuration::from_secs(3600);

    /// `lookup_batch` must agree with per-EID `lookup` on every outcome
    /// and side effect (refresh, expiry removal, counter).
    #[test]
    fn batch_agrees_with_single_lookups() {
        let build = || {
            let mut c = MapCache::new();
            c.install(
                vn(1),
                EidPrefix::host(eid(1)),
                Rloc::for_router_index(1),
                TTL,
                SimTime::ZERO,
            );
            c.install(
                vn(1),
                EidPrefix::host(eid(2)),
                Rloc::for_router_index(2),
                SimDuration::from_secs(10),
                SimTime::ZERO,
            );
            c.install(
                vn(1),
                EidPrefix::host(eid(3)),
                Rloc::for_router_index(3),
                TTL,
                SimTime::ZERO,
            );
            c.mark_stale(vn(1), eid(3));
            c
        };
        let probes = [eid(1), eid(2), eid(2), eid(3), eid(9)];
        let now = SimTime::ZERO + SimDuration::from_secs(60); // eid(2) expired

        let mut a = build();
        let singles: Vec<CacheOutcome> = probes.iter().map(|e| a.lookup(vn(1), *e, now)).collect();

        let mut b = build();
        let mut batched = Vec::new();
        b.lookup_batch(vn(1), &probes, now, &mut batched);

        assert_eq!(batched, singles);
        assert_eq!(a.len(), b.len());
        assert_eq!(b.len(), b.recount(), "expiry removal keeps the counter");
    }

    /// Regression: an expired host route must not shadow a live subnet
    /// for later EIDs of the same batch — expiry removal re-resolves.
    #[test]
    fn batch_expired_host_uncovers_live_subnet() {
        use sda_types::Ipv4Prefix;
        use std::net::Ipv4Addr;
        let subnet_rloc = Rloc::for_router_index(5);
        let build = || {
            let mut c = MapCache::new();
            c.install(
                vn(1),
                Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 16)
                    .unwrap()
                    .into(),
                subnet_rloc,
                TTL,
                SimTime::ZERO,
            );
            c.install(
                vn(1),
                EidPrefix::host(eid(3)),
                Rloc::for_router_index(9),
                SimDuration::from_secs(10),
                SimTime::ZERO,
            );
            c
        };
        let probes = [eid(3), eid(3), eid(3)];
        let now = SimTime::ZERO + SimDuration::from_secs(60); // host expired

        let mut a = build();
        let singles: Vec<CacheOutcome> = probes.iter().map(|e| a.lookup(vn(1), *e, now)).collect();
        let mut b = build();
        let mut batched = Vec::new();
        b.lookup_batch(vn(1), &probes, now, &mut batched);
        assert_eq!(batched, singles);
        assert_eq!(
            batched[1],
            CacheOutcome::Hit(subnet_rloc),
            "the live /16 must answer once the expired /32 is purged"
        );
        assert_eq!(b.len(), b.recount());
    }

    #[test]
    fn batch_on_unknown_vn_is_all_misses() {
        let mut c = MapCache::new();
        let mut out = vec![CacheOutcome::Hit(Rloc::for_router_index(9))]; // stale junk
        c.lookup_batch(vn(5), &[eid(1), eid(2)], SimTime::ZERO, &mut out);
        assert_eq!(out, vec![CacheOutcome::Miss, CacheOutcome::Miss]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    fn eid(n: u8) -> Eid {
        Eid::V4(Ipv4Addr::new(10, 0, 0, n))
    }

    const TTL: SimDuration = SimDuration::from_secs(3600);
    const IDLE: SimDuration = SimDuration::from_secs(7200);

    #[test]
    fn install_then_hit() {
        let mut c = MapCache::new();
        let r = Rloc::for_router_index(1);
        c.install(vn(1), EidPrefix::host(eid(1)), r, TTL, SimTime::ZERO);
        assert_eq!(c.lookup(vn(1), eid(1), SimTime::ZERO), CacheOutcome::Hit(r));
        assert_eq!(c.lookup(vn(1), eid(2), SimTime::ZERO), CacheOutcome::Miss);
        assert_eq!(c.lookup(vn(2), eid(1), SimTime::ZERO), CacheOutcome::Miss);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ttl_expiry_turns_hit_into_miss_and_removes() {
        let mut c = MapCache::new();
        c.install(
            vn(1),
            EidPrefix::host(eid(1)),
            Rloc::for_router_index(1),
            TTL,
            SimTime::ZERO,
        );
        let later = SimTime::ZERO + TTL + SimDuration::from_secs(1);
        assert_eq!(c.lookup(vn(1), eid(1), later), CacheOutcome::Miss);
        assert_eq!(c.len(), 0, "expired entry removed on lookup");
    }

    #[test]
    fn negative_reply_deletes() {
        let mut c = MapCache::new();
        c.install(
            vn(1),
            EidPrefix::host(eid(1)),
            Rloc::for_router_index(1),
            TTL,
            SimTime::ZERO,
        );
        assert!(c.apply_negative(vn(1), EidPrefix::host(eid(1))));
        assert!(!c.apply_negative(vn(1), EidPrefix::host(eid(1))));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn smr_marks_stale_but_still_forwards() {
        let mut c = MapCache::new();
        let old = Rloc::for_router_index(1);
        let new = Rloc::for_router_index(2);
        c.install(vn(1), EidPrefix::host(eid(1)), old, TTL, SimTime::ZERO);
        assert_eq!(c.mark_stale(vn(1), eid(1)), Some(old));
        // Stale entries keep forwarding to the old RLOC (which forwards
        // on per Fig. 6) until the re-resolution lands.
        assert_eq!(
            c.lookup(vn(1), eid(1), SimTime::ZERO),
            CacheOutcome::Stale(old)
        );
        c.update_rloc(vn(1), eid(1), new, TTL, SimTime::ZERO);
        assert_eq!(
            c.lookup(vn(1), eid(1), SimTime::ZERO),
            CacheOutcome::Hit(new)
        );
        // SMR for something not cached: no-op.
        assert_eq!(c.mark_stale(vn(1), eid(9)), None);
    }

    #[test]
    fn purge_rloc_clears_only_that_locator() {
        let mut c = MapCache::new();
        let r1 = Rloc::for_router_index(1);
        let r2 = Rloc::for_router_index(2);
        c.install(vn(1), EidPrefix::host(eid(1)), r1, TTL, SimTime::ZERO);
        c.install(vn(1), EidPrefix::host(eid(2)), r1, TTL, SimTime::ZERO);
        c.install(vn(1), EidPrefix::host(eid(3)), r2, TTL, SimTime::ZERO);
        assert_eq!(c.purge_rloc(r1), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.lookup(vn(1), eid(3), SimTime::ZERO),
            CacheOutcome::Hit(r2)
        );
    }

    #[test]
    fn idle_eviction() {
        let mut c = MapCache::new();
        let r = Rloc::for_router_index(1);
        c.install(
            vn(1),
            EidPrefix::host(eid(1)),
            r,
            SimDuration::from_days(7),
            SimTime::ZERO,
        );
        c.install(
            vn(1),
            EidPrefix::host(eid(2)),
            r,
            SimDuration::from_days(7),
            SimTime::ZERO,
        );
        // Keep entry 1 warm.
        let mid = SimTime::ZERO + SimDuration::from_secs(5000);
        assert_eq!(c.lookup(vn(1), eid(1), mid), CacheOutcome::Hit(r));
        // At IDLE past zero, entry 2 has idled out, entry 1 has not.
        let later = SimTime::ZERO + IDLE;
        assert_eq!(c.evict(later, IDLE), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(vn(1), eid(1), later), CacheOutcome::Hit(r));
    }

    #[test]
    fn clear_models_reboot() {
        let mut c = MapCache::new();
        c.install(
            vn(1),
            EidPrefix::host(eid(1)),
            Rloc::for_router_index(1),
            TTL,
            SimTime::ZERO,
        );
        c.clear();
        assert!(c.is_empty());
    }
}
