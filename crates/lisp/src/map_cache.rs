//! The edge router's map-cache: the on-demand overlay FIB.
//!
//! This is the structure whose size Fig. 9 plots. Entries arrive from
//! Map-Replies and leave through four doors, each tied to a paper
//! behavior:
//!
//! 1. **TTL expiry** — replies carry a TTL; expired entries are purged.
//! 2. **Negative replies** — a resolution that fails *deletes* the entry
//!    (§4.2: nighttime traffic toward departed endpoints cleans edge
//!    caches in building B).
//! 3. **SMR invalidation** — a Solicit-Map-Request marks the entry stale;
//!    the edge re-resolves on next use (Fig. 6).
//! 4. **Underlay events** — when a peer RLOC becomes unreachable, every
//!    entry pointing at it is dropped and traffic falls back to the
//!    border default route (§5.1).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use sda_simnet::{SimDuration, SimTime};
use sda_trie::EidTrie;
use sda_types::{Eid, EidPrefix, Rloc, VnId};

/// One cached mapping.
///
/// ## Memory-ordering contract
///
/// `last_used` and `stale` are interior-mutable atomics so the shared
/// lookup paths ([`MapCache::lookup_shared`],
/// [`MapCache::lookup_batch_shared`], [`MapCache::mark_stale_shared`])
/// can refresh them through `&self` while other reader threads descend
/// the same trie. All accesses use `Ordering::Relaxed` on purpose:
///
/// * Both fields are *per-entry heuristic metadata*, never used to
///   synchronize access to other memory. `last_used` only feeds the
///   idle-decay comparison in [`MapCache::evict`]; `stale` only chooses
///   between the `Hit` and `Stale` outcomes. A reader observing a
///   slightly stale value forwards correctly either way.
/// * The *structure* of the cache (tries, `rloc`, `expires_at`) is
///   never mutated while shared. Concurrent readers hold `&MapCache`
///   (e.g. through an `Arc` snapshot under the data plane's
///   clone-and-swap scheme); every structural mutation — install,
///   removal, eviction, compaction — goes through `&mut MapCache` on
///   the owner's copy, and the `Arc` publication itself provides the
///   release/acquire edge that makes the new structure visible.
///
/// Races that remain are benign by design: two threads refreshing
/// `last_used` store two monotone timestamps and either winning is a
/// valid "recently used" answer.
#[derive(Debug)]
pub struct CacheEntry {
    /// Locator the prefix resolves to.
    pub rloc: Rloc,
    /// Absolute expiry instant.
    pub expires_at: SimTime,
    /// Last time a lookup hit this entry (idle-decay input), nanoseconds
    /// since the simulation epoch. Refreshable through `&self`.
    last_used: AtomicU64,
    /// Entry marked stale by an SMR; next lookup must re-resolve.
    /// Settable through `&self`.
    stale: AtomicBool,
}

impl CacheEntry {
    /// A fresh (non-stale) entry last used at `last_used`.
    pub fn new(rloc: Rloc, expires_at: SimTime, last_used: SimTime) -> Self {
        CacheEntry {
            rloc,
            expires_at,
            last_used: AtomicU64::new(last_used.as_nanos()),
            stale: AtomicBool::new(false),
        }
    }

    /// Last time a lookup hit this entry.
    pub fn last_used(&self) -> SimTime {
        SimTime::from_nanos(self.last_used.load(Ordering::Relaxed))
    }

    /// Refreshes the idle-decay stamp (shared: `&self`, Relaxed — see
    /// the type-level memory-ordering contract).
    pub fn touch(&self, now: SimTime) {
        self.last_used.store(now.as_nanos(), Ordering::Relaxed);
    }

    /// Whether an SMR marked this entry stale.
    pub fn is_stale(&self) -> bool {
        self.stale.load(Ordering::Relaxed)
    }

    /// Sets the stale flag (shared: `&self`, Relaxed).
    pub fn set_stale(&self, stale: bool) {
        self.stale.store(stale, Ordering::Relaxed);
    }
}

impl Clone for CacheEntry {
    fn clone(&self) -> Self {
        CacheEntry {
            rloc: self.rloc,
            expires_at: self.expires_at,
            last_used: AtomicU64::new(self.last_used.load(Ordering::Relaxed)),
            stale: AtomicBool::new(self.is_stale()),
        }
    }
}

impl PartialEq for CacheEntry {
    fn eq(&self, other: &Self) -> bool {
        self.rloc == other.rloc
            && self.expires_at == other.expires_at
            && self.last_used() == other.last_used()
            && self.is_stale() == other.is_stale()
    }
}

impl Eq for CacheEntry {}

/// Result of a cache lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheOutcome {
    /// Fresh mapping: encapsulate toward this RLOC.
    Hit(Rloc),
    /// No entry (or expired): send a Map-Request, meanwhile use the
    /// default route to the border (§3.2.2).
    Miss,
    /// Entry exists but was SMR'd: usable for forwarding *now*, but a
    /// re-resolution must be triggered.
    Stale(Rloc),
}

/// The per-VN overlay FIB of one edge router.
///
/// Two families of lookup coexist:
///
/// * the `&mut` flavors ([`MapCache::lookup`], [`MapCache::lookup_batch`])
///   — the owner's path: they additionally *remove* TTL-expired entries
///   inline, so a single-owner cache self-cleans under traffic;
/// * the `&self` flavors ([`MapCache::lookup_shared`],
///   [`MapCache::lookup_batch_shared`]) — the multi-core read path:
///   expired entries are treated as absent (a dead host route never
///   shadows a live covering subnet) but stay in the trie until the
///   owner's [`MapCache::evict`]/[`MapCache::purge_rloc`] runs.
///   Outcome-for-outcome the two families agree (the property tests
///   assert it); only the structural side effects differ.
///
/// `Clone` supports the data plane's clone-and-swap publication: the
/// writer clones the cache, mutates the copy and swaps it in behind an
/// `Arc` while readers keep descending the old snapshot.
#[derive(Default, Clone)]
pub struct MapCache {
    vns: BTreeMap<VnId, EidTrie<CacheEntry>>,
    /// Maintained entry count, so [`MapCache::len`] is O(1) instead of a
    /// sum over every per-VN trie. Invariant: always equals
    /// [`MapCache::recount`] (checked by the property tests).
    total: usize,
    /// Scratch for [`MapCache::lookup_batch`]: `(batch index, prefix)`
    /// of entries that expired mid-batch, removed (and their EIDs
    /// re-resolved) after the trie traversal ends. Capacity is
    /// retained, so batches stop allocating once warmed up.
    expired_scratch: Vec<(usize, EidPrefix)>,
}

impl MapCache {
    /// Empty cache.
    pub fn new() -> Self {
        MapCache::default()
    }

    /// Installs a mapping from a positive Map-Reply.
    pub fn install(
        &mut self,
        vn: VnId,
        prefix: EidPrefix,
        rloc: Rloc,
        ttl: SimDuration,
        now: SimTime,
    ) {
        let prev = self
            .vns
            .entry(vn)
            .or_default()
            .insert(prefix, CacheEntry::new(rloc, now + ttl, now));
        if prev.is_none() {
            self.total += 1;
        }
    }

    /// Applies a negative Map-Reply: the covered entry is *deleted*.
    /// Returns true if something was removed.
    pub fn apply_negative(&mut self, vn: VnId, prefix: EidPrefix) -> bool {
        let removed = self
            .vns
            .get_mut(&vn)
            .map(|t| t.remove(&prefix).is_some())
            .unwrap_or(false);
        if removed {
            self.total -= 1;
        }
        removed
    }

    /// Looks up `eid`, refreshing `last_used` on a hit.
    ///
    /// Hot path: one trie descent, `last_used`/`stale` read and written
    /// through the in-place mutable match — zero heap allocations (the
    /// seed implementation did a full remove + insert round trip here).
    pub fn lookup(&mut self, vn: VnId, eid: Eid, now: SimTime) -> CacheOutcome {
        let Some(trie) = self.vns.get_mut(&vn) else {
            return CacheOutcome::Miss;
        };
        let expired_prefix = match trie.lookup_mut(&eid) {
            None => return CacheOutcome::Miss,
            Some((prefix, entry)) => {
                if now < entry.expires_at {
                    entry.touch(now);
                    return if entry.is_stale() {
                        CacheOutcome::Stale(entry.rloc)
                    } else {
                        CacheOutcome::Hit(entry.rloc)
                    };
                }
                // Expired: fall through to remove once the borrow ends.
                prefix
            }
        };
        trie.remove(&expired_prefix);
        self.total -= 1;
        CacheOutcome::Miss
    }

    /// Batched lookup: resolves `vn`'s trie once, then runs every EID of
    /// the burst through it via [`EidTrie::lookup_mut_each`], appending
    /// one [`CacheOutcome`] per EID to `out` (which is cleared first).
    ///
    /// This is the data plane's batch entry point: the per-VN map access
    /// and the trie root stay hot for the whole run instead of being
    /// re-resolved per packet. Semantics match [`MapCache::lookup`]
    /// exactly — `last_used` refreshes in place, expired entries answer
    /// `Miss` and are removed. Steady state allocates nothing once `out`
    /// and the internal expiry scratch have warmed up.
    pub fn lookup_batch(
        &mut self,
        vn: VnId,
        eids: &[Eid],
        now: SimTime,
        out: &mut Vec<CacheOutcome>,
    ) {
        out.clear();
        let MapCache {
            vns,
            total,
            expired_scratch,
        } = self;
        let Some(trie) = vns.get_mut(&vn) else {
            out.extend(eids.iter().map(|_| CacheOutcome::Miss));
            return;
        };
        expired_scratch.clear();
        trie.lookup_mut_each(eids, |i, res| {
            out.push(match res {
                None => CacheOutcome::Miss,
                Some((len, entry)) => {
                    if now < entry.expires_at {
                        entry.touch(now);
                        if entry.is_stale() {
                            CacheOutcome::Stale(entry.rloc)
                        } else {
                            CacheOutcome::Hit(entry.rloc)
                        }
                    } else {
                        // Cold path: only expiry pays for the prefix
                        // reconstruction the removal below needs.
                        expired_scratch.push((i, sda_trie::covering_prefix(&eids[i], len)));
                        CacheOutcome::Miss
                    }
                }
            });
        });
        // Cold path: replay the expiries in batch order so the results
        // match what sequential `lookup` calls would have produced. The
        // first EID to hit an expired entry removes it and keeps its
        // Miss; EIDs after it re-resolve, because the purge may have
        // uncovered a shorter live prefix (an expired host route must
        // not shadow a live subnet for the rest of the batch). The
        // re-resolution loops since the next-longest match can itself
        // be expired.
        for &(i, prefix) in expired_scratch.iter() {
            if trie.remove(&prefix).is_some() {
                *total -= 1;
                continue; // out[i] stays Miss, as in sequential lookup.
            }
            out[i] = loop {
                match trie.lookup_mut(&eids[i]) {
                    None => break CacheOutcome::Miss,
                    Some((p, entry)) => {
                        if now < entry.expires_at {
                            entry.touch(now);
                            break if entry.is_stale() {
                                CacheOutcome::Stale(entry.rloc)
                            } else {
                                CacheOutcome::Hit(entry.rloc)
                            };
                        }
                        trie.remove(&p);
                        *total -= 1;
                    }
                }
            };
        }
        expired_scratch.clear();
    }

    /// Shared-read lookup: the `&self` flavor of [`MapCache::lookup`]
    /// for the multi-core forwarding path. Refreshes `last_used`
    /// through the entry's atomics (see [`CacheEntry`]'s memory-ordering
    /// contract); expired entries are treated as absent — the filtered
    /// trie descent keeps searching shallower covering prefixes, so the
    /// outcome matches what [`MapCache::lookup`]'s remove-and-retry
    /// would have produced — but structural removal is left to the
    /// owner's [`MapCache::evict`].
    pub fn lookup_shared(&self, vn: VnId, eid: Eid, now: SimTime) -> CacheOutcome {
        let Some(trie) = self.vns.get(&vn) else {
            return CacheOutcome::Miss;
        };
        match trie.lookup_where(&eid, |e| now < e.expires_at) {
            None => CacheOutcome::Miss,
            Some((_, entry)) => {
                entry.touch(now);
                if entry.is_stale() {
                    CacheOutcome::Stale(entry.rloc)
                } else {
                    CacheOutcome::Hit(entry.rloc)
                }
            }
        }
    }

    /// Batched shared-read lookup: the `&self` flavor of
    /// [`MapCache::lookup_batch`], riding the interleaved lockstep trie
    /// walk ([`EidTrie::lookup_each_where`]) with the same
    /// expired-entries-are-absent filter as [`MapCache::lookup_shared`].
    /// Appends one [`CacheOutcome`] per EID to `out` (cleared first).
    /// Zero heap allocations once `out` has warmed up — there is no
    /// expiry scratch here at all, because shared lookups never remove.
    pub fn lookup_batch_shared(
        &self,
        vn: VnId,
        eids: &[Eid],
        now: SimTime,
        out: &mut Vec<CacheOutcome>,
    ) {
        out.clear();
        let Some(trie) = self.vns.get(&vn) else {
            out.extend(eids.iter().map(|_| CacheOutcome::Miss));
            return;
        };
        trie.lookup_each_where(
            eids,
            |e| now < e.expires_at,
            |_, res| {
                out.push(match res {
                    None => CacheOutcome::Miss,
                    Some((_, entry)) => {
                        entry.touch(now);
                        if entry.is_stale() {
                            CacheOutcome::Stale(entry.rloc)
                        } else {
                            CacheOutcome::Hit(entry.rloc)
                        }
                    }
                });
            },
        );
    }

    /// Shared-read SMR application: marks the deepest *live* entry
    /// covering `eid` stale through its atomic flag (`&self` — an SMR
    /// arriving on the control plane does not need to clone-and-swap
    /// the whole FIB). Returns the current RLOC if a live entry existed.
    /// Lands on exactly the entry [`MapCache::mark_stale`] would mark;
    /// only the expired-entry removal is left to the owner.
    pub fn mark_stale_shared(&self, vn: VnId, eid: Eid, now: SimTime) -> Option<Rloc> {
        let trie = self.vns.get(&vn)?;
        let (_, entry) = trie.lookup_where(&eid, |e| now < e.expires_at)?;
        entry.set_stale(true);
        Some(entry.rloc)
    }

    /// Adopts newer per-entry metadata from `snapshot` for every entry
    /// present in both caches **in the same generation** — matched by
    /// `(vn, prefix)` *and* identical `(rloc, expires_at)`: `last_used`
    /// takes the later stamp, `stale` is sticky-OR'd.
    ///
    /// This is the write-back half of clone-and-swap maintenance: under
    /// the multi-core scheme, readers refresh `last_used` on the
    /// *published* snapshot's atomics, so before publishing over (or
    /// idle-evicting against) a snapshot, the owner pulls those stamps
    /// back — otherwise entries that are hot on the data path look
    /// idle and get evicted. The generation check exists for the
    /// refresh race: an entry just re-installed on the owner's copy
    /// (new RLOC and/or expiry) must not re-adopt the *old*
    /// generation's stale flag, or an SMR refresh would silently undo
    /// itself and punt refreshes forever. O(snapshot entries).
    pub fn adopt_metadata(&mut self, snapshot: &MapCache) {
        for (vn, theirs) in snapshot.vns.iter() {
            let Some(mine) = self.vns.get(vn) else {
                continue;
            };
            for (prefix, entry) in theirs.iter() {
                if let Some(me) = mine.get(&prefix) {
                    if me.rloc != entry.rloc || me.expires_at != entry.expires_at {
                        // Different generation: the owner re-installed
                        // this mapping since the snapshot was taken.
                        continue;
                    }
                    if me.last_used() < entry.last_used() {
                        me.touch(entry.last_used());
                    }
                    if entry.is_stale() {
                        me.set_stale(true);
                    }
                }
            }
        }
    }

    /// Re-lays every per-VN trie arena in DFS preorder (see
    /// [`sda_trie::PatriciaTrie::compact`]). Call once a bulk
    /// population settles (the dataplane `Switch` exposes it as
    /// `compact_tables`); steady-state churn compacts opportunistically
    /// inside the tries themselves.
    pub fn compact(&mut self) {
        sda_trie::compact_each(self.vns.values_mut());
    }

    /// Aggregated trie-arena diagnostics across all VNs.
    pub fn mem_stats(&self) -> sda_trie::MemStats {
        sda_trie::merged_mem_stats(self.vns.values())
    }

    /// Marks the entry covering `eid` stale (SMR received). Returns the
    /// current RLOC if a live entry existed.
    ///
    /// Follows the same lazy-purge discipline as [`MapCache::lookup`]:
    /// TTL-expired entries on the path are removed and the SMR lands on
    /// the deepest *live* cover — an SMR must never "mark" a mapping
    /// that the very next lookup would purge (the invalidation would
    /// silently miss the covering prefix actually forwarding traffic).
    /// This also makes the owner flavor agree entry-for-entry with
    /// [`MapCache::mark_stale_shared`], whose filtered descent reaches
    /// the same live cover without removing anything.
    pub fn mark_stale(&mut self, vn: VnId, eid: Eid, now: SimTime) -> Option<Rloc> {
        let trie = self.vns.get_mut(&vn)?;
        loop {
            let expired = match trie.lookup_mut(&eid) {
                None => return None,
                Some((prefix, entry)) => {
                    if now < entry.expires_at {
                        entry.set_stale(true);
                        return Some(entry.rloc);
                    }
                    prefix
                }
            };
            trie.remove(&expired);
            self.total -= 1;
        }
    }

    /// Replaces the mapping for `eid` (Map-Notify / refreshed Map-Reply
    /// after SMR).
    pub fn update_rloc(&mut self, vn: VnId, eid: Eid, rloc: Rloc, ttl: SimDuration, now: SimTime) {
        self.install(vn, EidPrefix::host(eid), rloc, ttl, now);
    }

    /// Drops every entry pointing at `rloc` (underlay declared it down).
    /// Returns how many entries were removed — a single traversal per VN
    /// via [`EidTrie::retain`], not a collect-then-remove-each loop.
    pub fn purge_rloc(&mut self, rloc: Rloc) -> usize {
        let mut removed = 0;
        for trie in self.vns.values_mut() {
            removed += trie.retain(|_, e| e.rloc != rloc);
        }
        self.total -= removed;
        removed
    }

    /// Drops entries expired at `now` or idle longer than `idle_timeout`.
    /// Returns how many were evicted, in a single traversal per VN. This
    /// is the slow decay §4.2 observes: "edge routers cache routes learned
    /// on demand and may retain them during longer periods".
    ///
    /// Reads `last_used` through the entry's atomic (Relaxed): an entry
    /// whose stamp was refreshed by a concurrent-epoch
    /// [`MapCache::lookup_shared`] before this owner call survives —
    /// the regression test in `tests/shared_lookup.rs` pins that down.
    pub fn evict(&mut self, now: SimTime, idle_timeout: SimDuration) -> usize {
        let mut removed = 0;
        for trie in self.vns.values_mut() {
            removed += trie.retain(|_, e| {
                now < e.expires_at && now.saturating_since(e.last_used()) < idle_timeout
            });
        }
        self.total -= removed;
        removed
    }

    /// Current entry count — the Fig. 9 "FIB entries" metric. O(1): the
    /// count is maintained across install/remove/evict, not recomputed.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Recomputes the entry count from the tries (O(entries)). Exists so
    /// tests can assert the maintained counter never drifts; production
    /// callers should use [`MapCache::len`].
    pub fn recount(&self) -> usize {
        self.vns.values().map(EidTrie::len).sum()
    }

    /// Entries of one address family (the paper's Fig. 9 counts IPv4
    /// overlay-to-underlay mappings only).
    pub fn len_of(&self, kind: sda_types::EidKind) -> usize {
        self.vns.values().map(|t| t.len_of(kind)).sum()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry of `vn` (subscriber resync: the whole slice is
    /// rebuilt from a fresh snapshot). Returns how many were removed.
    pub fn purge_vn(&mut self, vn: VnId) -> usize {
        let removed = self.vns.remove(&vn).map(|t| t.len()).unwrap_or(0);
        self.total -= removed;
        removed
    }

    /// Iterates every `(vn, prefix, rloc, expires_at)` entry — the
    /// convergence checker's view of the cache.
    pub fn iter(&self) -> impl Iterator<Item = (VnId, EidPrefix, Rloc, SimTime)> + '_ {
        self.vns.iter().flat_map(|(vn, trie)| {
            trie.iter()
                .map(move |(prefix, e)| (*vn, prefix, e.rloc, e.expires_at))
        })
    }

    /// Clears everything (edge reboot, §5.2: "it will start with an
    /// empty FIB for the overlay entries").
    pub fn clear(&mut self) {
        self.vns.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    fn eid(n: u8) -> Eid {
        Eid::V4(Ipv4Addr::new(10, 0, 0, n))
    }

    const TTL: SimDuration = SimDuration::from_secs(3600);

    /// `lookup_batch` must agree with per-EID `lookup` on every outcome
    /// and side effect (refresh, expiry removal, counter).
    #[test]
    fn batch_agrees_with_single_lookups() {
        let build = || {
            let mut c = MapCache::new();
            c.install(
                vn(1),
                EidPrefix::host(eid(1)),
                Rloc::for_router_index(1),
                TTL,
                SimTime::ZERO,
            );
            c.install(
                vn(1),
                EidPrefix::host(eid(2)),
                Rloc::for_router_index(2),
                SimDuration::from_secs(10),
                SimTime::ZERO,
            );
            c.install(
                vn(1),
                EidPrefix::host(eid(3)),
                Rloc::for_router_index(3),
                TTL,
                SimTime::ZERO,
            );
            c.mark_stale(vn(1), eid(3), SimTime::ZERO);
            c
        };
        let probes = [eid(1), eid(2), eid(2), eid(3), eid(9)];
        let now = SimTime::ZERO + SimDuration::from_secs(60); // eid(2) expired

        let mut a = build();
        let singles: Vec<CacheOutcome> = probes.iter().map(|e| a.lookup(vn(1), *e, now)).collect();

        let mut b = build();
        let mut batched = Vec::new();
        b.lookup_batch(vn(1), &probes, now, &mut batched);

        assert_eq!(batched, singles);
        assert_eq!(a.len(), b.len());
        assert_eq!(b.len(), b.recount(), "expiry removal keeps the counter");
    }

    /// Regression: an expired host route must not shadow a live subnet
    /// for later EIDs of the same batch — expiry removal re-resolves.
    #[test]
    fn batch_expired_host_uncovers_live_subnet() {
        use sda_types::Ipv4Prefix;
        use std::net::Ipv4Addr;
        let subnet_rloc = Rloc::for_router_index(5);
        let build = || {
            let mut c = MapCache::new();
            c.install(
                vn(1),
                Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 16)
                    .unwrap()
                    .into(),
                subnet_rloc,
                TTL,
                SimTime::ZERO,
            );
            c.install(
                vn(1),
                EidPrefix::host(eid(3)),
                Rloc::for_router_index(9),
                SimDuration::from_secs(10),
                SimTime::ZERO,
            );
            c
        };
        let probes = [eid(3), eid(3), eid(3)];
        let now = SimTime::ZERO + SimDuration::from_secs(60); // host expired

        let mut a = build();
        let singles: Vec<CacheOutcome> = probes.iter().map(|e| a.lookup(vn(1), *e, now)).collect();
        let mut b = build();
        let mut batched = Vec::new();
        b.lookup_batch(vn(1), &probes, now, &mut batched);
        assert_eq!(batched, singles);
        assert_eq!(
            batched[1],
            CacheOutcome::Hit(subnet_rloc),
            "the live /16 must answer once the expired /32 is purged"
        );
        assert_eq!(b.len(), b.recount());
    }

    #[test]
    fn batch_on_unknown_vn_is_all_misses() {
        let mut c = MapCache::new();
        let mut out = vec![CacheOutcome::Hit(Rloc::for_router_index(9))]; // stale junk
        c.lookup_batch(vn(5), &[eid(1), eid(2)], SimTime::ZERO, &mut out);
        assert_eq!(out, vec![CacheOutcome::Miss, CacheOutcome::Miss]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn vn(n: u32) -> VnId {
        VnId::new(n).unwrap()
    }

    fn eid(n: u8) -> Eid {
        Eid::V4(Ipv4Addr::new(10, 0, 0, n))
    }

    const TTL: SimDuration = SimDuration::from_secs(3600);
    const IDLE: SimDuration = SimDuration::from_secs(7200);

    #[test]
    fn install_then_hit() {
        let mut c = MapCache::new();
        let r = Rloc::for_router_index(1);
        c.install(vn(1), EidPrefix::host(eid(1)), r, TTL, SimTime::ZERO);
        assert_eq!(c.lookup(vn(1), eid(1), SimTime::ZERO), CacheOutcome::Hit(r));
        assert_eq!(c.lookup(vn(1), eid(2), SimTime::ZERO), CacheOutcome::Miss);
        assert_eq!(c.lookup(vn(2), eid(1), SimTime::ZERO), CacheOutcome::Miss);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ttl_expiry_turns_hit_into_miss_and_removes() {
        let mut c = MapCache::new();
        c.install(
            vn(1),
            EidPrefix::host(eid(1)),
            Rloc::for_router_index(1),
            TTL,
            SimTime::ZERO,
        );
        let later = SimTime::ZERO + TTL + SimDuration::from_secs(1);
        assert_eq!(c.lookup(vn(1), eid(1), later), CacheOutcome::Miss);
        assert_eq!(c.len(), 0, "expired entry removed on lookup");
    }

    #[test]
    fn negative_reply_deletes() {
        let mut c = MapCache::new();
        c.install(
            vn(1),
            EidPrefix::host(eid(1)),
            Rloc::for_router_index(1),
            TTL,
            SimTime::ZERO,
        );
        assert!(c.apply_negative(vn(1), EidPrefix::host(eid(1))));
        assert!(!c.apply_negative(vn(1), EidPrefix::host(eid(1))));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn smr_marks_stale_but_still_forwards() {
        let mut c = MapCache::new();
        let old = Rloc::for_router_index(1);
        let new = Rloc::for_router_index(2);
        c.install(vn(1), EidPrefix::host(eid(1)), old, TTL, SimTime::ZERO);
        assert_eq!(c.mark_stale(vn(1), eid(1), SimTime::ZERO), Some(old));
        // Stale entries keep forwarding to the old RLOC (which forwards
        // on per Fig. 6) until the re-resolution lands.
        assert_eq!(
            c.lookup(vn(1), eid(1), SimTime::ZERO),
            CacheOutcome::Stale(old)
        );
        c.update_rloc(vn(1), eid(1), new, TTL, SimTime::ZERO);
        assert_eq!(
            c.lookup(vn(1), eid(1), SimTime::ZERO),
            CacheOutcome::Hit(new)
        );
        // SMR for something not cached: no-op.
        assert_eq!(c.mark_stale(vn(1), eid(9), SimTime::ZERO), None);
    }

    #[test]
    fn purge_rloc_clears_only_that_locator() {
        let mut c = MapCache::new();
        let r1 = Rloc::for_router_index(1);
        let r2 = Rloc::for_router_index(2);
        c.install(vn(1), EidPrefix::host(eid(1)), r1, TTL, SimTime::ZERO);
        c.install(vn(1), EidPrefix::host(eid(2)), r1, TTL, SimTime::ZERO);
        c.install(vn(1), EidPrefix::host(eid(3)), r2, TTL, SimTime::ZERO);
        assert_eq!(c.purge_rloc(r1), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.lookup(vn(1), eid(3), SimTime::ZERO),
            CacheOutcome::Hit(r2)
        );
    }

    #[test]
    fn idle_eviction() {
        let mut c = MapCache::new();
        let r = Rloc::for_router_index(1);
        c.install(
            vn(1),
            EidPrefix::host(eid(1)),
            r,
            SimDuration::from_days(7),
            SimTime::ZERO,
        );
        c.install(
            vn(1),
            EidPrefix::host(eid(2)),
            r,
            SimDuration::from_days(7),
            SimTime::ZERO,
        );
        // Keep entry 1 warm.
        let mid = SimTime::ZERO + SimDuration::from_secs(5000);
        assert_eq!(c.lookup(vn(1), eid(1), mid), CacheOutcome::Hit(r));
        // At IDLE past zero, entry 2 has idled out, entry 1 has not.
        let later = SimTime::ZERO + IDLE;
        assert_eq!(c.evict(later, IDLE), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(vn(1), eid(1), later), CacheOutcome::Hit(r));
    }

    #[test]
    fn shared_lookup_agrees_and_refreshes() {
        let mut c = MapCache::new();
        let r = Rloc::for_router_index(1);
        c.install(vn(1), EidPrefix::host(eid(1)), r, TTL, SimTime::ZERO);
        c.install(vn(1), EidPrefix::host(eid(2)), r, TTL, SimTime::ZERO);
        c.mark_stale(vn(1), eid(2), SimTime::ZERO);
        let now = SimTime::ZERO + SimDuration::from_secs(60);
        assert_eq!(c.lookup_shared(vn(1), eid(1), now), CacheOutcome::Hit(r));
        assert_eq!(c.lookup_shared(vn(1), eid(2), now), CacheOutcome::Stale(r));
        assert_eq!(c.lookup_shared(vn(1), eid(9), now), CacheOutcome::Miss);
        assert_eq!(c.lookup_shared(vn(9), eid(1), now), CacheOutcome::Miss);
        // The shared hit refreshed last_used: the entry survives an
        // eviction pass that would have idled it out at ZERO.
        let idle = SimDuration::from_secs(50);
        assert_eq!(c.evict(now, idle), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn shared_lookup_expired_host_uncovers_live_subnet_without_removal() {
        use sda_types::Ipv4Prefix;
        let subnet_rloc = Rloc::for_router_index(5);
        let mut c = MapCache::new();
        c.install(
            vn(1),
            Ipv4Prefix::new(Ipv4Addr::new(10, 0, 0, 0), 16)
                .unwrap()
                .into(),
            subnet_rloc,
            TTL,
            SimTime::ZERO,
        );
        c.install(
            vn(1),
            EidPrefix::host(eid(3)),
            Rloc::for_router_index(9),
            SimDuration::from_secs(10),
            SimTime::ZERO,
        );
        let now = SimTime::ZERO + SimDuration::from_secs(60); // host expired
        assert_eq!(
            c.lookup_shared(vn(1), eid(3), now),
            CacheOutcome::Hit(subnet_rloc),
            "expired host route must not shadow the live /16"
        );
        // No structural side effect: the expired entry is still there
        // (the owner's evict removes it).
        assert_eq!(c.len(), 2);
        assert_eq!(c.len(), c.recount());
        assert_eq!(c.evict(now, SimDuration::from_days(1)), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn batch_shared_agrees_with_single_shared() {
        let mut c = MapCache::new();
        c.install(
            vn(1),
            EidPrefix::host(eid(1)),
            Rloc::for_router_index(1),
            TTL,
            SimTime::ZERO,
        );
        c.install(
            vn(1),
            EidPrefix::host(eid(2)),
            Rloc::for_router_index(2),
            SimDuration::from_secs(10),
            SimTime::ZERO,
        );
        c.install(
            vn(1),
            EidPrefix::host(eid(3)),
            Rloc::for_router_index(3),
            TTL,
            SimTime::ZERO,
        );
        c.mark_stale(vn(1), eid(3), SimTime::ZERO);
        let probes = [eid(1), eid(2), eid(2), eid(3), eid(9)];
        let now = SimTime::ZERO + SimDuration::from_secs(60); // eid(2) expired
        let singles: Vec<CacheOutcome> = probes
            .iter()
            .map(|e| c.lookup_shared(vn(1), *e, now))
            .collect();
        let mut batched = Vec::new();
        c.lookup_batch_shared(vn(1), &probes, now, &mut batched);
        assert_eq!(batched, singles);
        // Unknown VN: all misses, output vector replaced.
        let mut out = vec![CacheOutcome::Hit(Rloc::for_router_index(9))];
        c.lookup_batch_shared(vn(5), &probes[..2], now, &mut out);
        assert_eq!(out, vec![CacheOutcome::Miss, CacheOutcome::Miss]);
    }

    #[test]
    fn mark_stale_shared_flags_through_shared_ref() {
        let mut c = MapCache::new();
        let r = Rloc::for_router_index(4);
        c.install(vn(1), EidPrefix::host(eid(1)), r, TTL, SimTime::ZERO);
        assert_eq!(c.mark_stale_shared(vn(1), eid(1), SimTime::ZERO), Some(r));
        assert_eq!(c.mark_stale_shared(vn(1), eid(9), SimTime::ZERO), None);
        assert_eq!(
            c.lookup(vn(1), eid(1), SimTime::ZERO),
            CacheOutcome::Stale(r),
            "owner lookup observes the shared stale mark"
        );
    }

    /// Review regression: adopting metadata from an old snapshot must
    /// not re-stale (or re-stamp) an entry the owner re-installed
    /// since — generations are matched by `(rloc, expires_at)`.
    #[test]
    fn adopt_metadata_skips_refreshed_generation() {
        let old_rloc = Rloc::for_router_index(1);
        let new_rloc = Rloc::for_router_index(2);
        let mut owner = MapCache::new();
        owner.install(vn(1), EidPrefix::host(eid(1)), old_rloc, TTL, SimTime::ZERO);
        owner.install(vn(1), EidPrefix::host(eid(2)), old_rloc, TTL, SimTime::ZERO);
        let snap = owner.clone();
        // SMR lands on the snapshot (the worker-visible copy)…
        let warm = SimTime::ZERO + SimDuration::from_secs(100);
        snap.mark_stale_shared(vn(1), eid(1), warm);
        assert!(matches!(
            snap.lookup_shared(vn(1), eid(2), warm),
            CacheOutcome::Hit(_)
        ));
        // …and the control plane answers the refresh on the owner copy
        // (new RLOC = new generation).
        owner.install(vn(1), EidPrefix::host(eid(1)), new_rloc, TTL, warm);

        owner.adopt_metadata(&snap);
        assert_eq!(
            owner.lookup_shared(vn(1), eid(1), warm),
            CacheOutcome::Hit(new_rloc),
            "the refreshed generation must not re-adopt the old stale flag"
        );
        // Same-generation entry did adopt the worker's stamp.
        assert_eq!(
            owner.evict(
                warm + SimDuration::from_secs(99),
                SimDuration::from_secs(100)
            ),
            0
        );
    }

    #[test]
    fn clone_snapshots_entry_metadata() {
        let mut c = MapCache::new();
        let r = Rloc::for_router_index(1);
        c.install(vn(1), EidPrefix::host(eid(1)), r, TTL, SimTime::ZERO);
        let snap = c.clone();
        // Mutating the original does not affect the snapshot.
        c.mark_stale(vn(1), eid(1), SimTime::ZERO);
        assert_eq!(
            snap.lookup_shared(vn(1), eid(1), SimTime::ZERO),
            CacheOutcome::Hit(r)
        );
        assert_eq!(
            c.lookup_shared(vn(1), eid(1), SimTime::ZERO),
            CacheOutcome::Stale(r)
        );
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.len(), snap.recount());
    }

    #[test]
    fn clear_models_reboot() {
        let mut c = MapCache::new();
        c.install(
            vn(1),
            EidPrefix::host(eid(1)),
            Rloc::for_router_index(1),
            TTL,
            SimTime::ZERO,
        );
        c.clear();
        assert!(c.is_empty());
    }
}
