//! Model-based property tests for the edge map-cache: the trie-backed
//! implementation must agree with a naive reference on every operation
//! sequence, and its TTL/idle/invalidations must never resurrect stale
//! state.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use proptest::prelude::*;
use sda_lisp::{CacheOutcome, MapCache};
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, EidPrefix, Rloc, VnId};

fn vn() -> VnId {
    VnId::new(1).unwrap()
}

fn eid(n: u8) -> Eid {
    Eid::V4(Ipv4Addr::new(10, 0, 0, n))
}

#[derive(Clone, Debug)]
enum Op {
    /// install(eid, rloc, ttl_secs) at the current time.
    Install(u8, u16, u32),
    /// lookup(eid).
    Lookup(u8),
    /// negative(eid).
    Negative(u8),
    /// mark_stale(eid).
    MarkStale(u8),
    /// purge_rloc(rloc).
    PurgeRloc(u16),
    /// advance clock by seconds.
    Advance(u32),
    /// evict with idle timeout (secs).
    Evict(u32),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16, 0u16..4, 1u32..600).prop_map(|(e, r, t)| Op::Install(e, r, t)),
        (0u8..16).prop_map(Op::Lookup),
        (0u8..16).prop_map(Op::Negative),
        (0u8..16).prop_map(Op::MarkStale),
        (0u16..4).prop_map(Op::PurgeRloc),
        (1u32..400).prop_map(Op::Advance),
        (60u32..600).prop_map(Op::Evict),
    ]
}

/// Reference model entry.
#[derive(Clone, Copy)]
struct ModelEntry {
    rloc: Rloc,
    expires_at: SimTime,
    last_used: SimTime,
    stale: bool,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cache_matches_reference_model(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let mut cache = MapCache::new();
        let mut model: HashMap<Eid, ModelEntry> = HashMap::new();
        let mut now = SimTime::ZERO;

        for op in ops {
            match op {
                Op::Install(e, r, ttl) => {
                    let rloc = Rloc::for_router_index(r);
                    let ttl = SimDuration::from_secs(u64::from(ttl));
                    cache.install(vn(), EidPrefix::host(eid(e)), rloc, ttl, now);
                    model.insert(eid(e), ModelEntry {
                        rloc,
                        expires_at: now + ttl,
                        last_used: now,
                        stale: false,
                    });
                }
                Op::Lookup(e) => {
                    let got = cache.lookup(vn(), eid(e), now);
                    let want = match model.get_mut(&eid(e)) {
                        Some(entry) if now < entry.expires_at => {
                            entry.last_used = now;
                            if entry.stale {
                                CacheOutcome::Stale(entry.rloc)
                            } else {
                                CacheOutcome::Hit(entry.rloc)
                            }
                        }
                        Some(_) => {
                            model.remove(&eid(e));
                            CacheOutcome::Miss
                        }
                        None => CacheOutcome::Miss,
                    };
                    prop_assert_eq!(got, want);
                }
                Op::Negative(e) => {
                    let got = cache.apply_negative(vn(), EidPrefix::host(eid(e)));
                    let want = model.remove(&eid(e)).is_some();
                    prop_assert_eq!(got, want);
                }
                Op::MarkStale(e) => {
                    let got = cache.mark_stale(vn(), eid(e), now);
                    // mark_stale follows lookup's lazy-purge discipline:
                    // an expired entry is removed, not marked.
                    let want = match model.get_mut(&eid(e)) {
                        Some(entry) if now < entry.expires_at => {
                            entry.stale = true;
                            Some(entry.rloc)
                        }
                        Some(_) => {
                            model.remove(&eid(e));
                            None
                        }
                        None => None,
                    };
                    prop_assert_eq!(got, want);
                }
                Op::PurgeRloc(r) => {
                    let rloc = Rloc::for_router_index(r);
                    let got = cache.purge_rloc(rloc);
                    let before = model.len();
                    model.retain(|_, entry| entry.rloc != rloc);
                    prop_assert_eq!(got, before - model.len());
                }
                Op::Advance(secs) => {
                    now += SimDuration::from_secs(u64::from(secs));
                }
                Op::Evict(idle) => {
                    let idle = SimDuration::from_secs(u64::from(idle));
                    let got = cache.evict(now, idle);
                    let before = model.len();
                    model.retain(|_, entry| {
                        now < entry.expires_at
                            && now.saturating_since(entry.last_used) < idle
                    });
                    prop_assert_eq!(got, before - model.len());
                }
            }
            prop_assert_eq!(cache.len(), model.len());
            // The maintained counter must never drift from the true
            // per-trie sum, whatever the operation mix.
            prop_assert_eq!(cache.len(), cache.recount());
        }
    }

    /// The O(1) maintained counter equals the recomputed per-trie sum
    /// across multiple VNs and address families (install/remove paths in
    /// every VN, not just the single-VN model test above).
    #[test]
    fn len_counter_matches_recount_across_vns(
        ops in proptest::collection::vec(
            (1u32..4, 0u8..12, 0u16..3, 0u8..3, 1u32..300), 1..80),
        idle in 60u32..600,
    ) {
        let mut cache = MapCache::new();
        let mut now = SimTime::ZERO;
        for (v, e, r, action, dt) in ops {
            let vn = VnId::new(v).unwrap();
            match action {
                0 => cache.install(
                    vn,
                    EidPrefix::host(eid(e)),
                    Rloc::for_router_index(r),
                    SimDuration::from_secs(u64::from(dt)),
                    now,
                ),
                1 => {
                    cache.apply_negative(vn, EidPrefix::host(eid(e)));
                }
                _ => {
                    now += SimDuration::from_secs(u64::from(dt));
                    cache.lookup(vn, eid(e), now);
                }
            }
            prop_assert_eq!(cache.len(), cache.recount());
        }
        cache.evict(now, SimDuration::from_secs(u64::from(idle)));
        prop_assert_eq!(cache.len(), cache.recount());
        cache.purge_rloc(Rloc::for_router_index(0));
        prop_assert_eq!(cache.len(), cache.recount());
        cache.clear();
        prop_assert_eq!(cache.len(), 0);
        prop_assert_eq!(cache.recount(), 0);
    }

    /// `lookup_shared` agrees with `lookup` outcome-for-outcome on the
    /// same operation sequence — including nested (subnet + host)
    /// prefixes, where `lookup` removes an expired host route and
    /// re-resolves to the covering subnet while `lookup_shared` reaches
    /// the same answer by filtering the dead entry during its single
    /// descent. Only the structural side effects differ (the shared
    /// cache keeps expired entries until the owner evicts), so lengths
    /// are *not* compared — outcomes are.
    #[test]
    fn lookup_shared_agrees_with_lookup(
        ops in proptest::collection::vec(arb_op(), 1..120),
        subnets in proptest::collection::vec((0u8..4, 0u16..4, 1u32..600), 0..4),
    ) {
        let mut owned = MapCache::new();
        let mut shared = MapCache::new();
        let mut now = SimTime::ZERO;

        // Seed both caches with identical covering subnets (10.0.X.0/24)
        // so expired host routes have something to uncover.
        for (third, r, ttl) in subnets {
            let prefix: EidPrefix = sda_types::Ipv4Prefix::new(
                Ipv4Addr::new(10, 0, third, 0), 24).unwrap().into();
            let rloc = Rloc::for_router_index(r);
            let ttl = SimDuration::from_secs(u64::from(ttl));
            owned.install(vn(), prefix, rloc, ttl, now);
            shared.install(vn(), prefix, rloc, ttl, now);
        }

        for op in ops {
            match op {
                Op::Install(e, r, ttl) => {
                    let rloc = Rloc::for_router_index(r);
                    let ttl = SimDuration::from_secs(u64::from(ttl));
                    owned.install(vn(), EidPrefix::host(eid(e)), rloc, ttl, now);
                    shared.install(vn(), EidPrefix::host(eid(e)), rloc, ttl, now);
                }
                Op::Lookup(e) => {
                    let want = owned.lookup(vn(), eid(e), now);
                    let got = shared.lookup_shared(vn(), eid(e), now);
                    prop_assert_eq!(got, want);
                    // And the batched shared flavor agrees with both.
                    let mut out = Vec::new();
                    shared.lookup_batch_shared(vn(), &[eid(e)], now, &mut out);
                    prop_assert_eq!(out[0], want);
                }
                Op::Negative(e) => {
                    owned.apply_negative(vn(), EidPrefix::host(eid(e)));
                    shared.apply_negative(vn(), EidPrefix::host(eid(e)));
                }
                Op::MarkStale(e) => {
                    // The shared cache takes the SMR through the atomic
                    // flag — the `&self` path the multi-core switch
                    // uses. Both flavors land on the deepest live cover.
                    let want = owned.mark_stale(vn(), eid(e), now);
                    let got = shared.mark_stale_shared(vn(), eid(e), now);
                    prop_assert_eq!(got, want);
                }
                Op::PurgeRloc(r) => {
                    let rloc = Rloc::for_router_index(r);
                    owned.purge_rloc(rloc);
                    shared.purge_rloc(rloc);
                }
                Op::Advance(secs) => {
                    now += SimDuration::from_secs(u64::from(secs));
                }
                Op::Evict(idle) => {
                    let idle = SimDuration::from_secs(u64::from(idle));
                    owned.evict(now, idle);
                    shared.evict(now, idle);
                }
            }
        }
    }

    /// A hit can never return an expired entry's RLOC.
    #[test]
    fn hits_are_never_expired(
        installs in proptest::collection::vec((0u8..8, 0u16..4, 1u32..100), 1..20),
        probe_at in 0u32..300,
        probe in 0u8..8,
    ) {
        let mut cache = MapCache::new();
        for (e, r, ttl) in &installs {
            cache.install(
                vn(),
                EidPrefix::host(eid(*e)),
                Rloc::for_router_index(*r),
                SimDuration::from_secs(u64::from(*ttl)),
                SimTime::ZERO,
            );
        }
        let now = SimTime::ZERO + SimDuration::from_secs(u64::from(probe_at));
        match cache.lookup(vn(), eid(probe), now) {
            CacheOutcome::Hit(_) | CacheOutcome::Stale(_) => {
                // The last install for this eid must still be live.
                let last = installs.iter().rev().find(|(e, _, _)| *e == probe);
                let (_, _, ttl) = last.expect("hit without install");
                prop_assert!(u64::from(probe_at) < u64::from(*ttl));
            }
            CacheOutcome::Miss => {}
        }
    }
}
