//! Proof, not promise: `MapCache::lookup` on hit, stale and miss paths
//! performs **zero heap allocations** (the seed implementation allocated
//! on every trie step and did a remove + insert per hit).
//!
//! This file deliberately holds a single `#[test]` — the counter is
//! process-global, and a concurrently running test would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

use sda_lisp::{CacheOutcome, MapCache};
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, EidPrefix, Rloc, VnId};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn map_cache_lookup_allocates_nothing() {
    let vn = VnId::new(1).unwrap();
    let eid = |i: u32| Eid::V4(Ipv4Addr::from(0x0A00_0000 | i));
    let ttl = SimDuration::from_secs(3600);

    let mut cache = MapCache::new();
    for i in 0..10_000u32 {
        cache.install(
            vn,
            EidPrefix::host(eid(i)),
            Rloc::for_router_index((i % 200) as u16),
            ttl,
            SimTime::ZERO,
        );
    }
    for i in 0..5_000u32 {
        cache.mark_stale(vn, eid(i), SimTime::ZERO);
    }

    let now = SimTime::ZERO + SimDuration::from_secs(1);
    let before = allocations();

    let (mut hits, mut stales, mut misses) = (0u64, 0u64, 0u64);
    for i in 0..20_000u32 {
        match cache.lookup(vn, eid(i), now) {
            CacheOutcome::Hit(_) => hits += 1,
            CacheOutcome::Stale(_) => stales += 1,
            CacheOutcome::Miss => misses += 1,
        }
    }

    let after = allocations();
    assert_eq!((hits, stales, misses), (5_000, 5_000, 10_000));
    assert_eq!(
        after - before,
        0,
        "map-cache lookup performed {} heap allocations",
        after - before
    );

    // The shared-read flavors (the multi-core hot path): single and
    // batched `&self` lookups allocate nothing either, once the output
    // vector has warmed up.
    let probes: Vec<Eid> = (0..32u32).map(|i| eid(i * 613 % 20_000)).collect();
    let mut out = Vec::new();
    cache.lookup_batch_shared(vn, &probes, now, &mut out); // warm `out`
    let before = allocations();
    let (mut hits, mut stales, mut misses) = (0u64, 0u64, 0u64);
    for i in 0..20_000u32 {
        match cache.lookup_shared(vn, eid(i), now) {
            CacheOutcome::Hit(_) => hits += 1,
            CacheOutcome::Stale(_) => stales += 1,
            CacheOutcome::Miss => misses += 1,
        }
    }
    for _ in 0..600 {
        cache.lookup_batch_shared(vn, &probes, now, &mut out);
        assert_eq!(out.len(), probes.len());
    }
    let after = allocations();
    assert_eq!((hits, stales, misses), (5_000, 5_000, 10_000));
    assert_eq!(
        after - before,
        0,
        "shared map-cache lookup performed {} heap allocations",
        after - before
    );
}
