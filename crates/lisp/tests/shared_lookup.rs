//! Threaded regression tests for the shared-read map-cache path.
//!
//! The `CacheEntry` atomics exist so reader threads holding only
//! `&MapCache` can refresh `last_used`/read `stale` while the table is
//! shared across cores. These tests pin down the two behaviors that
//! would silently rot without them:
//!
//! 1. [`MapCache::evict`] compares `last_used` *after* the atomics
//!    change — an entry kept warm by concurrent `lookup_shared` calls
//!    must survive the owner's eviction pass, while a genuinely idle
//!    entry still goes.
//! 2. Concurrent shared lookups from many threads agree with the
//!    owner's view and never tear (every outcome is a valid
//!    Hit/Stale/Miss for the installed state).

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

use sda_lisp::{CacheOutcome, MapCache};
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, EidPrefix, Rloc, VnId};

fn vn() -> VnId {
    VnId::new(1).unwrap()
}

fn eid(n: u8) -> Eid {
    Eid::V4(Ipv4Addr::new(10, 0, 0, n))
}

const TTL: SimDuration = SimDuration::from_days(7);

/// Satellite regression: 4 threads hammer `lookup_shared` (refreshing
/// `last_used` through the atomics), then the owner runs `evict` with an
/// idle timeout that would have collected the entry had the refreshes
/// been lost. The hammered entry survives; an unprobed sibling is
/// evicted in the same pass.
#[test]
fn concurrently_refreshed_entry_survives_eviction() {
    let mut cache = MapCache::new();
    let hot = Rloc::for_router_index(1);
    let cold = Rloc::for_router_index(2);
    cache.install(vn(), EidPrefix::host(eid(1)), hot, TTL, SimTime::ZERO);
    cache.install(vn(), EidPrefix::host(eid(2)), cold, TTL, SimTime::ZERO);

    let idle = SimDuration::from_secs(3600);
    // Readers probe at `warm`, inside the idle window measured from ZERO
    // — so surviving eviction at `later` requires the refresh to have
    // actually landed in `last_used`.
    let warm = SimTime::ZERO + SimDuration::from_secs(3000);
    let later = SimTime::from_nanos(warm.as_nanos() + idle.as_nanos() - 1);
    assert!(
        later.saturating_since(SimTime::ZERO) >= idle,
        "an unrefreshed entry must be idle at `later`"
    );

    let hits = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..10_000 {
                    match cache.lookup_shared(vn(), eid(1), warm) {
                        CacheOutcome::Hit(r) => {
                            assert_eq!(r, hot);
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("installed entry must hit, got {other:?}"),
                    }
                }
            });
        }
    });
    assert_eq!(hits.load(Ordering::Relaxed), 40_000);

    // Owner maintenance: only the never-probed entry idles out.
    assert_eq!(cache.evict(later, idle), 1, "exactly the cold entry goes");
    assert_eq!(
        cache.lookup_shared(vn(), eid(1), later),
        CacheOutcome::Hit(hot),
        "the concurrently-refreshed entry must survive eviction"
    );
    assert_eq!(cache.lookup_shared(vn(), eid(2), later), CacheOutcome::Miss);
    assert_eq!(cache.len(), cache.recount());
}

/// Many reader threads, mixed hit/stale/miss probes: every outcome is
/// exactly what the installed state dictates — shared descents never
/// tear, and the stale flag set through `&self` mid-run is observed as
/// either pre- or post-SMR (both valid), never anything else.
#[test]
fn shared_lookups_from_threads_agree_with_owner_state() {
    let mut cache = MapCache::new();
    let r1 = Rloc::for_router_index(1);
    let r2 = Rloc::for_router_index(2);
    cache.install(vn(), EidPrefix::host(eid(1)), r1, TTL, SimTime::ZERO);
    cache.install(vn(), EidPrefix::host(eid(2)), r2, TTL, SimTime::ZERO);
    let now = SimTime::ZERO + SimDuration::from_secs(5);

    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let mut out = Vec::new();
                let probes = [eid(1), eid(2), eid(3), eid(1)];
                for _ in 0..5_000 {
                    cache.lookup_batch_shared(vn(), &probes, now, &mut out);
                    match out[0] {
                        CacheOutcome::Hit(r) | CacheOutcome::Stale(r) => assert_eq!(r, r1),
                        CacheOutcome::Miss => panic!("eid 1 installed"),
                    }
                    match out[1] {
                        CacheOutcome::Hit(r) | CacheOutcome::Stale(r) => assert_eq!(r, r2),
                        CacheOutcome::Miss => panic!("eid 2 installed"),
                    }
                    assert_eq!(out[2], CacheOutcome::Miss);
                    // Same EID as lane 0; the concurrent SMR may land
                    // between the two stale-flag loads, so only the RLOC
                    // is pinned.
                    match out[3] {
                        CacheOutcome::Hit(r) | CacheOutcome::Stale(r) => assert_eq!(r, r1),
                        CacheOutcome::Miss => panic!("eid 1 installed"),
                    }
                }
            });
        }
        // A concurrent SMR through the shared flag: readers see the flip
        // as Hit-then-Stale, never garbage.
        s.spawn(|| {
            cache.mark_stale_shared(vn(), eid(1), now);
        });
    });
    assert_eq!(
        cache.lookup_shared(vn(), eid(1), now),
        CacheOutcome::Stale(r1),
        "the SMR landed"
    );
}
