//! Property test for the map-server registry's maintained entry counter:
//! whatever mix of registers, withdrawals, retains and expiry purges
//! runs, [`MappingDb::len`] (O(1)) must equal [`MappingDb::recount`]
//! (the per-trie sum) — the invariant that let the ROADMAP's "recomputes
//! `len()` as a per-VN sum" open item close.

use std::net::Ipv4Addr;

use proptest::prelude::*;
use sda_lisp::MappingDb;
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, MacAddr, Rloc, VnId};

fn vn(n: u32) -> VnId {
    VnId::new(n).unwrap()
}

/// Mixes address families so every per-VN trie family is exercised.
fn eid(n: u8) -> Eid {
    match n % 3 {
        0 => Eid::V4(Ipv4Addr::new(10, 0, 0, n)),
        1 => Eid::Mac(MacAddr::from_seed(u32::from(n))),
        _ => Eid::V6(std::net::Ipv6Addr::new(
            0x2001,
            0xdb8,
            0,
            0,
            0,
            0,
            0,
            n.into(),
        )),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn len_counter_never_drifts_from_recount(
        ops in proptest::collection::vec(
            (1u32..4, 0u8..24, 0u16..4, 0u8..4, 1u32..400), 1..100),
    ) {
        let mut db = MappingDb::new();
        let mut now = SimTime::ZERO;
        for (v, e, r, action, dt) in ops {
            match action {
                0 | 1 => {
                    db.register(
                        vn(v),
                        eid(e),
                        Rloc::for_router_index(r),
                        SimDuration::from_secs(u64::from(dt)),
                        now,
                    );
                }
                2 => {
                    db.withdraw(vn(v), eid(e));
                }
                _ => {
                    now += SimDuration::from_secs(u64::from(dt));
                    db.purge_expired(now);
                }
            }
            prop_assert_eq!(db.len(), db.recount());
            prop_assert_eq!(db.is_empty(), db.recount() == 0);
        }
        // A retain that drops every record in one VN keeps the counter
        // honest too.
        db.retain(|v, _, _| v != vn(1));
        prop_assert_eq!(db.len(), db.recount());
    }
}
