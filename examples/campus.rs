//! Campus week: run building A's diurnal workload for one week and
//! print the border-vs-edge FIB story of Fig. 9 as an hourly table.
//!
//! Run with: `cargo run --release -p sda-examples --bin campus`

use sda_workloads::campus::{CampusParams, CampusScenario};

fn main() {
    let mut params = CampusParams::building_a();
    params.days = 7;
    println!(
        "building {}: {} endpoints, {} edges, {} border(s), {:.0}% always-on",
        params.name,
        params.endpoints,
        params.edges,
        params.borders,
        params.always_on_share * 100.0
    );

    let mut scenario = CampusScenario::build(params);
    scenario.run();

    let metrics = scenario.fabric.metrics();
    let border = metrics.series(&scenario.border_series(0));
    // Average the edge series hour by hour.
    let edge_series: Vec<_> = (0..scenario.edges.len())
        .map(|i| metrics.series(&scenario.edge_series(i)))
        .collect();

    println!("\n hour │ border FIB │ avg edge FIB");
    println!("──────┼────────────┼─────────────");
    for (idx, (t, b)) in border.iter().enumerate() {
        let hour = t.as_secs_f64() / 3600.0;
        // Print every 4th sample to keep the table readable.
        if idx % 4 != 0 {
            continue;
        }
        let edge_avg: f64 = edge_series
            .iter()
            .filter_map(|s| s.get(idx).map(|(_, v)| *v))
            .sum::<f64>()
            / edge_series.len() as f64;
        let day = (hour / 24.0) as usize;
        let dow = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"][day % 7];
        println!(
            " {dow} {:02}h │ {b:10.0} │ {edge_avg:12.1}",
            (hour as usize) % 24
        );
    }

    // Week summary: the Table 5 statistic.
    let avg = |v: &[(sda_simnet::SimTime, f64)]| {
        v.iter().map(|(_, x)| *x).sum::<f64>() / v.len().max(1) as f64
    };
    let border_avg = avg(border);
    let edge_avg: f64 = edge_series.iter().map(|s| avg(s)).sum::<f64>() / edge_series.len() as f64;
    println!(
        "\nweek averages: border={border_avg:.0}  edge={edge_avg:.0}  (edge/border = {:.0}%)",
        edge_avg / border_avg * 100.0
    );
}
