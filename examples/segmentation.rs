//! Segmentation walk-through: the paper's hospital example (§3.2.1).
//!
//! Macro-segmentation: three VNs — clinical staff, guests, medical
//! devices — that can never reach each other. Micro-segmentation:
//! group rules inside the clinical VN. Also demonstrates the §5.4
//! policy-update trade-off calculator.
//!
//! Run with: `cargo run -p sda-examples --bin segmentation`

use sda_core::controller::FabricBuilder;
use sda_policy::{Population, UpdatePlan, UpdateStrategy};
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, GroupId, Ipv4Prefix, PortId, RouterId, VnId};
use std::net::Ipv4Addr;

fn main() {
    let mut b = FabricBuilder::new(11);

    // ── Macro: three isolated VNs ─────────────────────────────────────
    let clinical = b.add_vn(
        10,
        Ipv4Prefix::new(Ipv4Addr::new(10, 10, 0, 0), 16).unwrap(),
    );
    let guests = b.add_vn(
        20,
        Ipv4Prefix::new(Ipv4Addr::new(10, 20, 0, 0), 16).unwrap(),
    );
    let devices = b.add_vn(
        30,
        Ipv4Prefix::new(Ipv4Addr::new(10, 30, 0, 0), 16).unwrap(),
    );

    // ── Micro: groups inside the clinical VN ─────────────────────────
    let doctors = GroupId(1);
    let nurses = GroupId(2);
    let records = GroupId(3); // the records system
    b.allow(clinical, doctors, records);
    b.allow(clinical, nurses, records);
    b.allow(clinical, doctors, nurses);
    b.allow(clinical, nurses, doctors);
    // Guests may chat among themselves; devices talk to nothing.
    let guest_g = GroupId(1);
    b.allow(guests, guest_g, guest_g);

    let e1 = b.add_edge("ward1");
    let e2 = b.add_edge("ward2");
    let _border = b.add_border("border", vec![]);

    let dr_house = b.mint_endpoint(clinical, doctors);
    let nurse_joy = b.mint_endpoint(clinical, nurses);
    let emr = b.mint_endpoint(clinical, records);
    let visitor = b.mint_endpoint(guests, guest_g);
    let mri = b.mint_endpoint(devices, GroupId(9)); // the outdated-OS MRI

    let mut f = b.build();
    let ms = |n: u64| SimTime::ZERO + SimDuration::from_millis(n);

    f.attach_at(ms(0), e1, dr_house, PortId(1));
    f.attach_at(ms(0), e1, visitor, PortId(2));
    f.attach_at(ms(0), e1, mri, PortId(3));
    f.attach_at(ms(0), e2, nurse_joy, PortId(1));
    f.attach_at(ms(0), e2, emr, PortId(2));
    f.run_until(ms(50));

    // Doctor reads a record: allowed.
    f.send_at(ms(100), e1, dr_house.mac, Eid::V4(emr.ipv4), 512, 1, false);
    // Visitor pokes at the records system: wrong VN — structurally dead.
    f.send_at(ms(100), e1, visitor.mac, Eid::V4(emr.ipv4), 512, 2, false);
    // MRI tries to reach the doctor: wrong VN again.
    f.send_at(ms(100), e1, mri.mac, Eid::V4(dr_house.ipv4), 512, 3, false);
    // Records system answers nobody spontaneously (no records→* rule).
    f.send_at(ms(100), e2, emr.mac, Eid::V4(nurse_joy.ipv4), 512, 4, false);
    f.run_until(ms(400));

    let delivered = f.edge(e2).stats().delivered;
    let denied = f.edge(e2).stats().policy_drops;
    println!("clinical delivery (doctor→records): {delivered}");
    println!("egress policy drops (records→nurse): {denied}");
    println!(
        "cross-VN attempts dead-ended at the border: {}",
        f.border(sda_core::controller::BorderHandle(0))
            .stats()
            .unroutable
    );
    assert_eq!(delivered, 1);
    assert_eq!(denied, 1);

    // ── §5.4: plan a policy update two ways ───────────────────────────
    // The hospital acquires a clinic: 60 new staff start in a
    // "probation" group across 2 edges; 30 matrix rules mention it.
    let mut pop = Population::new();
    pop.add(RouterId(1), VnId::new(10).unwrap(), GroupId(7), 40);
    pop.add(RouterId(2), VnId::new(10).unwrap(), GroupId(7), 20);
    let plan = UpdatePlan::acquisition(VnId::new(10).unwrap(), GroupId(7), doctors, 30);
    let mv = plan.signaling_messages(UpdateStrategy::MoveEndpoints, &pop);
    let rw = plan.signaling_messages(UpdateStrategy::RewriteRules, &pop);
    println!("\nacquisition rollout: move-endpoints={mv} msgs, rewrite-rules={rw} msgs");
    println!("cheaper strategy: {:?}", plan.cheaper_strategy(&pop));
}
