//! Warehouse mobility: a reduced version of the §4.3 experiment,
//! comparing handover delay under the reactive (LISP) and proactive
//! (BGP route-reflector) control planes.
//!
//! Run with: `cargo run --release -p sda-examples --bin warehouse`
//! (the full 16k-host/200-edge version lives in the bench harness:
//! `cargo run --release -p sda-bench --bin fig11_handover_cdf`)

use sda_simnet::Summary;
use sda_workloads::warehouse::{run_bgp, run_lisp, WarehouseParams};

fn main() {
    let mut params = WarehouseParams::small();
    params.hosts = 1000;
    params.edges = 40;
    params.moves_per_sec = 200.0;
    params.measured_moves = 100;
    println!(
        "warehouse: {} robots over {} edges, {} moves/s",
        params.hosts, params.edges, params.moves_per_sec
    );

    println!("\nrunning reactive (LISP)…");
    let lisp: Vec<f64> = run_lisp(&params)
        .iter()
        .filter_map(|s| s.delay_secs())
        .collect();
    println!("running proactive (BGP route reflector)…");
    let bgp: Vec<f64> = run_bgp(&params)
        .iter()
        .filter_map(|s| s.delay_secs())
        .collect();

    let ls = Summary::of(&lisp).expect("lisp samples");
    let bs = Summary::of(&bgp).expect("bgp samples");

    println!("\n                 │   LISP (reactive) │   BGP (proactive)");
    println!("─────────────────┼───────────────────┼──────────────────");
    let row = |name: &str, a: f64, b: f64| {
        println!(" {name:<15} │ {:>14.2} ms │ {:>13.2} ms", a * 1e3, b * 1e3);
    };
    row("median", ls.p50, bs.p50);
    row("mean", ls.mean, bs.mean);
    row("p95", ls.p95, bs.p95);
    row("max", ls.max, bs.max);
    println!(
        "\nproactive/reactive mean ratio: {:.1}× (paper: ~10×)",
        bs.mean / ls.mean
    );

    // The Fig. 11 rendering: CDF of delay relative to the global minimum.
    let unit = ls.min.min(bs.min);
    println!("\nCDF (delay relative to minimum observed):");
    println!("  frac │  LISP │   BGP");
    for (l, b) in Summary::cdf(&lisp, 10).iter().zip(Summary::cdf(&bgp, 10)) {
        println!("  {:>4.1} │ {:>5.1} │ {:>5.1}", l.1, l.0 / unit, b.0 / unit);
    }
}
