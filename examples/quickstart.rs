//! Quickstart: build a three-router fabric, define policy, onboard two
//! endpoints, and watch the reactive control plane do its job.
//!
//! Run with: `cargo run -p sda-examples --bin quickstart`

use sda_core::controller::FabricBuilder;
use sda_simnet::{SimDuration, SimTime};
use sda_types::{Eid, GroupId, Ipv4Prefix, PortId};
use std::net::Ipv4Addr;

fn main() {
    // ── Operator intent (§3.1's declarative interface) ────────────────
    let mut builder = FabricBuilder::new(/*seed*/ 1);

    // One virtual network for the workforce, with its overlay subnet.
    let corp = builder.add_vn(
        100,
        Ipv4Prefix::new(Ipv4Addr::new(10, 100, 0, 0), 16).unwrap(),
    );

    // Two groups and a connectivity matrix: employees may talk to
    // employees and to printers; printers never start conversations.
    let employees = GroupId(10);
    let printers = GroupId(20);
    builder.allow(corp, employees, employees);
    builder.allow(corp, employees, printers);
    // (no printers→anything rule: default deny)

    // Topology: two edges and a border with the Internet behind it.
    let edge1 = builder.add_edge("edge1");
    let edge2 = builder.add_edge("edge2");
    let border = builder.add_border(
        "border",
        vec![Ipv4Prefix::new(Ipv4Addr::new(0, 0, 0, 0), 0).unwrap()],
    );

    // Endpoints: the builder mints credentials and overlay addresses.
    let alice = builder.mint_endpoint(corp, employees);
    let printer = builder.mint_endpoint(corp, printers);

    let mut fabric = builder.build();

    // ── Things happen ─────────────────────────────────────────────────
    let ms = |n: u64| SimTime::ZERO + SimDuration::from_millis(n);

    // Both devices plug in: RADIUS auth, rule download, LISP register.
    fabric.attach_at(ms(0), edge1, alice, PortId(1));
    fabric.attach_at(ms(0), edge2, printer, PortId(7));
    fabric.run_until(ms(50));
    println!(
        "onboarded: edge1={} edge2={}",
        fabric.edge(edge1).stats().onboarded,
        fabric.edge(edge2).stats().onboarded
    );
    println!(
        "routing server mappings: {}",
        fabric.routing_server().server().db_len()
    );

    // Alice prints. The first packet misses edge1's map-cache, rides the
    // default route through the border, and triggers a Map-Request; the
    // second goes straight to edge2.
    fabric.send_at(
        ms(100),
        edge1,
        alice.mac,
        Eid::V4(printer.ipv4),
        1200,
        1,
        false,
    );
    fabric.send_at(
        ms(200),
        edge1,
        alice.mac,
        Eid::V4(printer.ipv4),
        1200,
        2,
        false,
    );
    fabric.run_until(ms(300));

    let e1 = fabric.edge(edge1).stats();
    let e2 = fabric.edge(edge2).stats();
    println!(
        "edge1: default-routed={} map-requests={}",
        e1.default_routed, e1.map_requests
    );
    println!("edge2: delivered={}", e2.delivered);
    println!("border relayed: {}", fabric.border(border).stats().relayed);
    println!("edge1 map-cache entries: {}", fabric.edge(edge1).fib_len());

    // The printer tries to phone home to Alice — denied on egress.
    fabric.send_at(
        ms(400),
        edge2,
        printer.mac,
        Eid::V4(alice.ipv4),
        64,
        3,
        false,
    );
    fabric.run_until(ms(500));
    println!(
        "edge1 policy drops: {}",
        fabric.edge(edge1).stats().policy_drops
    );

    // And some Internet traffic through the border's external route.
    fabric.send_at(
        ms(600),
        edge1,
        alice.mac,
        Eid::V4(Ipv4Addr::new(93, 184, 216, 34)),
        800,
        4,
        false,
    );
    fabric.run_until(ms(700));
    println!(
        "border external deliveries: {}",
        fabric.border(border).stats().external
    );

    assert_eq!(e2.delivered, 2);
    assert_eq!(fabric.edge(edge1).stats().policy_drops, 1);
    println!(
        "\nquickstart OK — reactive resolution, segmentation and default routing all exercised"
    );
}
