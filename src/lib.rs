//! Top-level integration crate for the SDA reproduction workspace.
//!
//! Re-exports every layer so downstream users (and the repo-level
//! integration tests under `tests/`) can depend on one crate. The layers,
//! bottom-up:
//!
//! * [`types`] — shared vocabulary (EIDs, RLOCs, prefixes, ids).
//! * [`simnet`] — deterministic discrete-event simulator and metrics.
//! * [`trie`] — the Patricia trie behind the routing server.
//! * [`wire`] — packet formats (Ethernet/IP/UDP/VXLAN-GPO/LISP).
//! * [`policy`] — group-based segmentation policy and SXP.
//! * [`underlay`] — underlay topology and SPF.
//! * [`bgp`] — the proactive host-route baseline the paper compares to.
//! * [`lisp`] — map-server, map-cache, pub/sub, SMR.
//! * [`dataplane`] — the batched zero-copy VXLAN-GPO forwarding engine.
//! * [`core`] — edge/border routers, pipelines, controller.
//! * [`workloads`] — campus / warehouse traffic generators.

pub use sda_bgp as bgp;
pub use sda_core as core;
pub use sda_dataplane as dataplane;
pub use sda_lisp as lisp;
pub use sda_policy as policy;
pub use sda_simnet as simnet;
pub use sda_trie as trie;
pub use sda_types as types;
pub use sda_underlay as underlay;
pub use sda_wire as wire;
pub use sda_workloads as workloads;
